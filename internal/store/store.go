package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ErrCrashed is returned by every operation after the store has been
// killed — by a scripted CrashPoint, by Kill, or by a write failure. The
// policy is fail-stop: a store that cannot append durably must not keep
// acknowledging work, so the server treats ErrCrashed as fatal and the
// recovery path takes over on the next start.
var ErrCrashed = errors.New("store: crashed")

// ErrFenced is returned by Append when the store's fencing term has been
// overtaken: a follower was promoted and this store is a deposed primary.
// The policy matches ErrCrashed — the server withholds the response and
// stops serving — but the cause is distinguishable so the fenced-write
// counter and tests can observe rejected zombie appends.
var ErrFenced = errors.New("store: fenced: a newer primary holds this shard")

// Counters is the metrics hook the store reports into; internal/metrics
// Server satisfies it. A nil Counters is allowed.
type Counters interface {
	AddWALAppend(bytes int)
	AddWALFsync()
	AddSnapshot()
	AddRecovery(recordsReplayed int, truncatedBytes int64)
	AddFencedWrite()
	// AddWALGroupCommit records one group commit landing the given number
	// of records; syncNanos is the wall time of the group's fsync (0 when
	// Fsync is off).
	AddWALGroupCommit(records int, syncNanos int64)
}

// DefaultGroupMax is the records-per-group cap when Options.GroupMax is
// zero. Large enough that a saturated 64-appender workload amortizes its
// fsync ~64×, small enough that one group buffer stays cache-friendly.
const DefaultGroupMax = 512

// Options tunes a Store.
type Options struct {
	// Fsync syncs the WAL file after every append and snapshot write.
	// Disabling it trades machine-crash durability for throughput;
	// process-crash durability (what RunCrashing simulates) is unaffected
	// because appends are single write(2) calls.
	Fsync bool
	// SnapshotEvery checkpoints automatically after this many WAL appends
	// (0 disables automatic checkpoints; Checkpoint can still be called
	// explicitly, e.g. at clean shutdown).
	SnapshotEvery int
	// PendingCap bounds each recovered client's pending-firings set,
	// mirroring the engine's cap so replay reproduces its evictions
	// (0 means DefaultPendingCap).
	PendingCap int
	// GroupMax caps how many records one group commit lands with a single
	// write(2) and fsync (0 means DefaultGroupMax; 1 degenerates to
	// per-record commit). An AppendBatch larger than the cap still lands
	// atomically as one oversized group — a batch is never split.
	GroupMax int
	// GroupWait is how long a flush leader holds the commit queue open
	// before landing a group, trading commit latency for larger groups
	// under light concurrency. 0 (the default) flushes immediately:
	// concurrent callers already coalesce while the leader's flush is in
	// flight, with no added latency.
	GroupWait time.Duration
	// Counters receives wal/snapshot/recovery metrics; nil is allowed.
	Counters Counters
}

// RecoveryInfo describes what Open found on disk.
type RecoveryInfo struct {
	// Gen is the generation recovered (snapshot + WAL file pair).
	Gen uint64
	// FromSnapshot is true when a snapshot file seeded the state.
	FromSnapshot bool
	// Replayed is the number of WAL records applied on top.
	Replayed int
	// TruncatedBytes is how many trailing bytes the recovery discarded
	// (torn final write, trailing garbage, or a corrupt CRC); the file is
	// repaired — truncated to the clean prefix — before appends resume.
	TruncatedBytes int64
	// TruncateReason says why the tail was discarded, empty when clean.
	TruncateReason string
}

// CrashPoint scripts a deterministic store kill for the fault-injection
// harness: on the AfterAppends-th Append (1-based, counted over the
// store's lifetime), only the first TearBytes bytes of the frame reach
// the file (clamped to the frame; a value past the frame length writes
// it whole — a record-boundary kill), then Garbage is appended, FlipBit
// flips the addressed bit (offset from the end of the file, when
// FlipBit >= 0), and the store dies: the append and everything after it
// returns ErrCrashed.
type CrashPoint struct {
	AfterAppends int
	TearBytes    int
	Garbage      []byte
	FlipBit      int64 // bit index counting back from EOF; -1 disables
}

// Store is the durable backend: one active WAL generation plus the
// snapshot that seeds it. Append is safe for concurrent use; Checkpoint
// serializes against appends.
type Store struct {
	dir  string
	opts Options

	mu          sync.Mutex
	gen         uint64
	wal         *os.File
	crashed     bool
	appends     int // appends since the last checkpoint
	appendsEver int // lifetime appends, for CrashPoint matching
	crashPoints []CrashPoint

	// qmu guards the commit queue alone. Appenders enqueue under qmu and
	// then contend for s.mu; whoever wins with its request still pending
	// is the flush leader and lands the whole queue as one group. Lock
	// order: qmu is taken either alone or inside s.mu, never around it.
	qmu   sync.Mutex
	queue []*commitReq

	// Flush-leader scratch, touched only under s.mu: the spare queue
	// backing array the leader swaps in, the gathered group write buffer,
	// and the per-record frame-end offsets within it.
	spareQ   []*commitReq
	groupBuf []byte
	groupEnd []int

	// pos is the lifetime record position: it advances by one per
	// appended record and survives checkpoint rotations, giving the
	// replication stream a monotonic coordinate.
	pos uint64
	// term is this store's fencing term; termSource reads the shard's
	// current term (shared with the replicator). When termSource reports
	// a term newer than ours, a follower was promoted and every further
	// append is rejected with ErrFenced.
	term       uint64
	termSource func() uint64

	// replSink receives one frame batch per group commit (one ReplRecord
	// frame per record in the group, in append order) and a single-frame
	// batch per checkpoint (the new snapshot generation). It is called
	// with s.mu held — before any append in the group can release its
	// client-visible response — so every acknowledged write reaches the
	// sink. It must not call back into the store.
	replSink func([]ReplFrame)

	// stateSource captures the current full state for checkpoints; the
	// engine installs it. It is called with s.mu held, so it must not
	// call back into the store.
	stateSource func() *State
}

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.json", gen))
}

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", gen))
}

// Open recovers the durable state from dir (creating it if needed) and
// returns the store ready for appends, the recovered state, and a
// description of what recovery found. A torn or corrupt WAL tail is
// truncated away — never an error: it is the expected artifact of a
// crash mid-write, and every record it could hold was unacknowledged.
func Open(dir string, opts Options) (*Store, *State, RecoveryInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, RecoveryInfo{}, fmt.Errorf("store: %w", err)
	}
	gen, hasSnap, err := latestGen(dir)
	if err != nil {
		return nil, nil, RecoveryInfo{}, err
	}
	info := RecoveryInfo{Gen: gen, FromSnapshot: hasSnap}

	var base *State
	if hasSnap {
		f, err := os.Open(snapPath(dir, gen))
		if err != nil {
			return nil, nil, info, fmt.Errorf("store: %w", err)
		}
		base, err = readSnapshot(f)
		f.Close()
		if err != nil {
			return nil, nil, info, err
		}
	}
	b := newBuilder(base, opts.PendingCap)

	wp := walPath(dir, gen)
	buf, err := os.ReadFile(wp)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, info, fmt.Errorf("store: %w", err)
	}
	payloads, clean, reason := ScanFrames(buf)
	for _, p := range payloads {
		rec, err := DecodeRecord(p)
		if err != nil {
			// A frame that passed its CRC but does not decode is a format
			// error, not a torn write: refuse to guess.
			return nil, nil, info, fmt.Errorf("store: wal record %d: %w", info.Replayed, err)
		}
		b.apply(rec)
		info.Replayed++
	}
	info.TruncatedBytes = int64(len(buf) - clean)
	info.TruncateReason = reason
	if info.TruncatedBytes > 0 {
		// Repair: cut the damage off so new appends extend the clean
		// prefix instead of burying live records behind garbage.
		if err := os.Truncate(wp, int64(clean)); err != nil {
			return nil, nil, info, fmt.Errorf("store: repair wal: %w", err)
		}
	}

	wal, err := os.OpenFile(wp, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, info, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, gen: gen, wal: wal, pos: uint64(info.Replayed)}
	if opts.Counters != nil {
		opts.Counters.AddRecovery(info.Replayed, info.TruncatedBytes)
	}
	return s, b.finish(), info, nil
}

// latestGen scans dir for snapshot/WAL generations and returns the
// highest one plus whether it has a snapshot. Snapshot files are written
// via atomic rename, so any snap-*.json present is complete.
func latestGen(dir string) (uint64, bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, false, fmt.Errorf("store: %w", err)
	}
	var gens []uint64
	snaps := make(map[uint64]bool)
	seen := make(map[uint64]bool)
	for _, e := range entries {
		var g uint64
		if n, _ := fmt.Sscanf(e.Name(), "snap-%d.json", &g); n == 1 && filepath.Ext(e.Name()) == ".json" {
			snaps[g] = true
			if !seen[g] {
				seen[g], gens = true, append(gens, g)
			}
		} else if n, _ := fmt.Sscanf(e.Name(), "wal-%d.log", &g); n == 1 && filepath.Ext(e.Name()) == ".log" {
			if !seen[g] {
				seen[g], gens = true, append(gens, g)
			}
		}
	}
	if len(gens) == 0 {
		return 0, false, nil
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	g := gens[len(gens)-1]
	return g, snaps[g], nil
}

// SetStateSource installs the callback that captures the full current
// state for checkpoints. It must be set before automatic checkpoints can
// fire; Engine wiring does this in NewDurable.
func (s *Store) SetStateSource(f func() *State) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stateSource = f
}

// SetCounters installs (or replaces) the metrics sink. NewDurable uses it
// to point the store at the engine's counters, which do not exist yet
// when the store is opened.
func (s *Store) SetCounters(c Counters) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opts.Counters = c
}

// SetCrashPoints scripts deterministic kills for the crash-injection
// harness. Points match on the store's lifetime append count.
func (s *Store) SetCrashPoints(pts []CrashPoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashPoints = append([]CrashPoint(nil), pts...)
}

// commitReq is one caller's stake in a group commit: its records,
// already encoded and framed, and the completion flag its waiter
// re-checks under s.mu. Requests are pooled; buf and offs keep their
// capacity across uses, which is what keeps the append hot path
// allocation-free in steady state.
type commitReq struct {
	buf   []byte // framed records, concatenated
	offs  []int  // per record: payload start, payload end within buf
	nrecs int
	done  bool // written and read only under s.mu
	err   error
}

var commitReqPool = sync.Pool{New: func() any { return new(commitReq) }}

func getCommitReq() *commitReq {
	req := commitReqPool.Get().(*commitReq)
	req.buf = req.buf[:0]
	req.offs = req.offs[:0]
	req.nrecs = 0
	req.done = false
	req.err = nil
	return req
}

// addRecord encodes rec and frames it in place at the tail of the
// request buffer: header space is reserved, the record encodes directly
// after it, and the length/CRC backfill — no intermediate payload copy.
func (req *commitReq) addRecord(rec Record) {
	hdr := len(req.buf)
	req.buf = append(req.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	pstart := len(req.buf)
	req.buf = rec.appendTo(req.buf)
	payload := req.buf[pstart:]
	binary.BigEndian.PutUint32(req.buf[hdr:], uint32(len(payload)))
	binary.BigEndian.PutUint32(req.buf[hdr+4:], crc32.ChecksumIEEE(payload))
	req.offs = append(req.offs, pstart, len(req.buf))
	req.nrecs++
}

// Append frames, writes and (per Options.Fsync) syncs one record. It
// returns only after the bytes are handed to the OS — the caller releases
// the client-visible response afterwards, which is the write-ahead
// discipline. On any failure the store is dead (ErrCrashed) and stays so.
//
// Concurrent callers group-commit: each enqueues its pre-framed record
// and the first to take the store lock becomes the flush leader, landing
// every queued record with one write(2) and (when Fsync is on) one fsync
// before waking the group. A single-threaded caller forms groups of one
// and behaves exactly like the historical per-record path.
func (s *Store) Append(rec Record) error {
	req := getCommitReq()
	req.addRecord(rec)
	return s.commit(req)
}

// AppendBatch commits a batch of records as one atomic group: one WAL
// frame per record, all landed in order with a single write (and single
// fsync) and no foreign record interleaved between them. Either every
// record is handed to the OS or the batch returns an error and none of
// it may be acknowledged. An empty batch is a no-op.
func (s *Store) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	req := getCommitReq()
	for _, rec := range recs {
		req.addRecord(rec)
	}
	return s.commit(req)
}

// commit enqueues req and blocks until a flush leader — possibly this
// caller — completes it. Termination invariant: a request is either
// completed or still in the queue, and flushQueueLocked always drains
// the whole queue, so the first pass through the loop body either
// observes done or flushes the queue containing req.
func (s *Store) commit(req *commitReq) error {
	s.qmu.Lock()
	s.queue = append(s.queue, req)
	s.qmu.Unlock()
	s.mu.Lock()
	for !req.done {
		s.flushQueueLocked()
	}
	s.mu.Unlock()
	err := req.err
	commitReqPool.Put(req)
	return err
}

// flushQueueLocked is the group-commit leader: it swaps the commit queue
// out and lands the drained requests in GroupMax-record chunks, each one
// write(2) + one fsync. Runs with s.mu held.
func (s *Store) flushQueueLocked() {
	if s.opts.GroupWait > 0 && !s.crashed {
		// Hold the group open: appenders keep enqueueing under qmu while
		// the leader sleeps, growing the group this flush will land.
		time.Sleep(s.opts.GroupWait)
	}
	s.qmu.Lock()
	batch := s.queue
	s.queue = s.spareQ[:0]
	s.qmu.Unlock()
	s.spareQ = batch // the two backing arrays rotate; emptied below

	max := s.opts.GroupMax
	if max <= 0 {
		max = DefaultGroupMax
	}
	for start := 0; start < len(batch); {
		end, nrecs := start, 0
		for end < len(batch) && (nrecs == 0 || nrecs+batch[end].nrecs <= max) {
			nrecs += batch[end].nrecs
			end++
		}
		s.flushChunkLocked(batch[start:end], nrecs)
		start = end
	}
	for i := range batch {
		batch[i] = nil // completed; waiters own them again once s.mu drops
	}
}

// flushChunkLocked lands one chunk of requests as a single group commit,
// with the same check ordering as the historical per-record Append:
// crashed → fence → crash points → write → fsync → positions → repl sink
// → fence re-check → checkpoint. Every request in the chunk completes
// with the same verdict — the group is atomic to its callers.
func (s *Store) flushChunkLocked(chunk []*commitReq, nrecs int) {
	if s.crashed {
		completeChunk(chunk, ErrCrashed)
		return
	}
	if err := s.fenceCheckLocked(); err != nil {
		s.countExtraFencedLocked(nrecs - 1)
		completeChunk(chunk, err)
		return
	}

	// Gather the chunk into one contiguous group buffer, remembering each
	// record's frame-end offset so a scripted crash can tear mid-group.
	gb := s.groupBuf[:0]
	ends := s.groupEnd[:0]
	for _, req := range chunk {
		base := len(gb)
		gb = append(gb, req.buf...)
		for r := 0; r < req.nrecs; r++ {
			ends = append(ends, base+req.offs[2*r+1])
		}
	}
	s.groupBuf = gb
	s.groupEnd = ends

	// Scripted crash points count lifetime appends record by record, as
	// if the group were individual Appends. A hit kills the whole group:
	// records before the hit land whole, the hit record tears per the
	// script, nothing after it reaches the file — and no waiter in the
	// group acks, because completed-but-unacknowledged durable records
	// replay idempotently while an acknowledged-but-torn one would not.
	for i := 0; i < nrecs; i++ {
		s.appendsEver++
		for _, cp := range s.crashPoints {
			if cp.AfterAppends == s.appendsEver {
				frameStart := 0
				if i > 0 {
					frameStart = ends[i-1]
				}
				s.executeCrashLocked(cp, gb[:ends[i]], frameStart)
				completeChunk(chunk, ErrCrashed)
				return
			}
		}
	}

	if _, err := s.wal.Write(gb); err != nil {
		s.crashed = true
		completeChunk(chunk, fmt.Errorf("%w: %v", ErrCrashed, err))
		return
	}
	var syncNs int64
	if s.opts.Fsync {
		t0 := time.Now()
		if err := s.wal.Sync(); err != nil {
			s.crashed = true
			completeChunk(chunk, fmt.Errorf("%w: %v", ErrCrashed, err))
			return
		}
		syncNs = time.Since(t0).Nanoseconds()
	}
	if c := s.opts.Counters; c != nil {
		prev := 0
		for _, end := range ends {
			c.AddWALAppend(end - prev)
			prev = end
		}
		if s.opts.Fsync {
			c.AddWALFsync()
		}
		c.AddWALGroupCommit(nrecs, syncNs)
	}
	s.appends += nrecs
	basePos := s.pos
	s.pos += uint64(nrecs)

	if s.replSink != nil {
		// The frames' payloads must outlive the pooled request buffers —
		// async followers retain them until the next pump — so the group
		// gets one fresh payload allocation, sliced per record.
		data := make([]byte, 0, payloadBytes(chunk))
		frames := make([]ReplFrame, 0, nrecs)
		pos := basePos
		for _, req := range chunk {
			for r := 0; r < req.nrecs; r++ {
				pstart, pend := req.offs[2*r], req.offs[2*r+1]
				off := len(data)
				data = append(data, req.buf[pstart:pend]...)
				pos++
				frames = append(frames, ReplFrame{
					Type: ReplRecord, Term: s.term, Gen: s.gen, Pos: pos,
					Payload: data[off:len(data):len(data)],
				})
			}
		}
		s.replSink(frames)
	}
	// Re-validate the term now that the sink has run. A promotion that
	// completed between the pre-write check and the sink call (Promote
	// holds only the replicator's lock, not ours) has already reset every
	// follower for resync — the frames the sink just delivered were
	// dropped, so acknowledging this group would lose it. The records
	// exist only in this deposed primary's own WAL: duplicates if the
	// log ever rejoins, never a loss. The sink runs under the
	// replicator's lock and the term bumps before Promote takes it, so
	// if the frames were dropped the newer term is visible here.
	if err := s.fenceCheckLocked(); err != nil {
		s.countExtraFencedLocked(nrecs - 1)
		completeChunk(chunk, err)
		return
	}
	if s.opts.SnapshotEvery > 0 && s.appends >= s.opts.SnapshotEvery && s.stateSource != nil {
		if err := s.checkpointLocked(s.stateSource()); err != nil {
			completeChunk(chunk, err)
			return
		}
	}
	completeChunk(chunk, nil)
}

// completeChunk hands every request in the chunk its verdict; the
// waiters observe done under s.mu once the leader releases it.
func completeChunk(chunk []*commitReq, err error) {
	for _, req := range chunk {
		req.err = err
		req.done = true
	}
}

// payloadBytes is the chunk's total un-framed record payload size.
func payloadBytes(chunk []*commitReq) int {
	n := 0
	for _, req := range chunk {
		n += len(req.buf) - req.nrecs*frameHeader
	}
	return n
}

// countExtraFencedLocked books the fenced-write counter for the records
// of a fenced group beyond the one fenceCheckLocked already counted.
func (s *Store) countExtraFencedLocked(n int) {
	if s.opts.Counters == nil {
		return
	}
	for i := 0; i < n; i++ {
		s.opts.Counters.AddFencedWrite()
	}
}

// fenceCheckLocked rejects the write with ErrFenced when the shared
// term source reports a term newer than this store's own — a follower
// was promoted and this store is a deposed primary.
func (s *Store) fenceCheckLocked() error {
	if s.termSource == nil {
		return nil
	}
	if cur := s.termSource(); cur > s.term {
		if s.opts.Counters != nil {
			s.opts.Counters.AddFencedWrite()
		}
		return fmt.Errorf("%w (own term %d, current %d)", ErrFenced, s.term, cur)
	}
	return nil
}

// executeCrashLocked applies a scripted kill to a group: every byte of
// group before frameStart (the earlier records of the group) lands
// whole, then a torn prefix of the final frame, optional trailing
// garbage, an optional bit flip, then death.
func (s *Store) executeCrashLocked(cp CrashPoint, group []byte, frameStart int) {
	tear := cp.TearBytes
	if frame := group[frameStart:]; tear > len(frame) {
		tear = len(frame)
	}
	if frameStart+tear > 0 {
		s.wal.Write(group[:frameStart+tear])
	}
	if len(cp.Garbage) > 0 {
		s.wal.Write(cp.Garbage)
	}
	s.wal.Sync()
	if cp.FlipBit >= 0 {
		flipBitFromEnd(s.wal.Name(), cp.FlipBit)
	}
	s.crashed = true
	s.wal.Close()
}

// Checkpoint writes a full snapshot of the current state (from the
// installed state source) and rotates the WAL. Use at clean shutdown and
// for explicit durability points.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	if s.stateSource == nil {
		return errors.New("store: no state source installed")
	}
	return s.checkpointLocked(s.stateSource())
}

// checkpointLocked writes snap-(gen+1) via temp-file + atomic rename,
// switches appends to wal-(gen+1), then deletes the old generation. A
// crash anywhere in between recovers correctly: until the rename lands,
// the old snapshot + old WAL (still intact) are authoritative; after it,
// the new snapshot is, with or without its WAL file.
func (s *Store) checkpointLocked(state *State) error {
	next := s.gen + 1
	tmp := snapPath(s.dir, next) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		s.crashed = true
		return fmt.Errorf("%w: %v", ErrCrashed, err)
	}
	if err := writeSnapshot(f, state); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(tmp)
		s.crashed = true
		return fmt.Errorf("%w: %v", ErrCrashed, err)
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		s.crashed = true
		return fmt.Errorf("%w: %v", ErrCrashed, err)
	}
	if err := f.Close(); err != nil {
		s.crashed = true
		return fmt.Errorf("%w: %v", ErrCrashed, err)
	}
	if err := os.Rename(tmp, snapPath(s.dir, next)); err != nil {
		s.crashed = true
		return fmt.Errorf("%w: %v", ErrCrashed, err)
	}
	syncDir(s.dir)

	wal, err := os.OpenFile(walPath(s.dir, next), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		s.crashed = true
		return fmt.Errorf("%w: %v", ErrCrashed, err)
	}
	s.wal.Close()
	os.Remove(walPath(s.dir, s.gen))
	os.Remove(snapPath(s.dir, s.gen))
	syncDir(s.dir)
	s.wal = wal
	s.gen = next
	s.appends = 0
	if s.opts.Counters != nil {
		s.opts.Counters.AddSnapshot()
	}
	if s.replSink != nil {
		// Followers rotate to the new generation through a snapshot frame;
		// a follower that misses it detects the gap and resyncs.
		s.replSink([]ReplFrame{{Type: ReplSnapshot, Term: s.term, Gen: s.gen, Pos: s.pos, Payload: EncodeState(state)}})
	}
	return nil
}

// Kill simulates abrupt process death for the crash harness: the WAL
// file descriptor is closed as-is — no checkpoint, no flush beyond what
// individual appends already wrote — and every later operation fails.
func (s *Store) Kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return
	}
	s.crashed = true
	s.wal.Close()
}

// Close checkpoints nothing (call Checkpoint first for a clean-shutdown
// snapshot) but syncs and closes the WAL.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil
	}
	s.crashed = true
	if s.opts.Fsync {
		s.wal.Sync()
	}
	return s.wal.Close()
}

// WALPath returns the active WAL file path (for the crash harness's
// tail-mangling injectors).
func (s *Store) WALPath() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return walPath(s.dir, s.gen)
}

// Gen returns the current generation number.
func (s *Store) Gen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Pos returns the lifetime record position: how many records this store
// has ever appended (plus those replayed at Open). The replication
// stream stamps every record frame with it.
func (s *Store) Pos() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pos
}

// Crashed reports whether the store is dead (killed, crash point, or
// write failure).
func (s *Store) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// SetTerm installs this store's own fencing term (the term it was
// promoted or booted under).
func (s *Store) SetTerm(t uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.term = t
}

// Term returns this store's own fencing term.
func (s *Store) Term() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.term
}

// SetTermSource installs the shared current-term reader. Once the
// source reports a term newer than this store's own, every Append is
// rejected with ErrFenced — the deposed-primary fence. The source is
// called with s.mu held and must not call back into the store.
func (s *Store) SetTermSource(f func() uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.termSource = f
}

// SetReplSink installs the replication stream hook: one batch of
// ReplRecord frames per group commit (in append order) and a one-frame
// batch per checkpoint snapshot. The sink runs with s.mu held — before
// any append in the group can release its response — so every
// acknowledged write is in the stream. It must not call back into the
// store. Frame payloads are freshly allocated per group and may be
// retained by the sink.
func (s *Store) SetReplSink(f func([]ReplFrame)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replSink = f
}

// Bootstrap captures the current full state as a ReplSnapshot frame and
// hands it to fn while holding the store lock: no record can be
// appended between the capture and fn's return, so a follower installed
// inside fn (and subscribed through the repl sink) misses nothing. The
// state source must be installed first.
func (s *Store) Bootstrap(fn func(ReplFrame) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	if s.stateSource == nil {
		return errors.New("store: no state source installed")
	}
	return fn(ReplFrame{
		Type: ReplSnapshot, Term: s.term, Gen: s.gen, Pos: s.pos,
		Payload: EncodeState(s.stateSource()),
	})
}

// syncDir fsyncs a directory so renames and creates survive a power cut.
// Errors are ignored: some filesystems refuse directory fsync, and the
// fallback behaviour (rely on the next sync) is still correct for the
// process-crash model the tests exercise.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
