package server

import (
	"fmt"
	"sort"
	"time"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/store"
)

// This file wires the engine to its durable backend (internal/store).
// Write-ahead discipline: every state-changing handler mutates in-memory
// state under the appropriate lock, releases the lock, appends a typed
// record, and only then returns its response — so nothing a client can
// observe precedes the log entry that reconstructs it. Appends happen
// OUTSIDE engine locks: a checkpoint (which holds the store mutex while
// capturing engine state through DurableState) can therefore never
// deadlock against an appender, and replay stays correct because records
// are applied idempotently and each client's operations are causally
// ordered by the client itself (a FiredAck can only follow the fired
// response, which was only released after its own append).

// NewDurable builds an engine backed by st, reconstructing registry,
// client table and session table from the recovered state. The store's
// metrics sink is pointed at the engine's counters and the recovery
// itself is recorded there.
func NewDurable(cfg Config, st *store.Store, state *store.State, info store.RecoveryInfo) (*Engine, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.restoreState(state); err != nil {
		return nil, err
	}
	e.wal = st
	st.SetCounters(e.met)
	e.met.AddRecovery(info.Replayed, info.TruncatedBytes)
	st.SetStateSource(e.DurableState)
	return e, nil
}

// restoreState loads recovered durable state into a fresh engine.
func (e *Engine) restoreState(state *store.State) error {
	if state == nil {
		return nil
	}
	if len(state.Alarms) > 0 || len(state.Fired) > 0 || state.NextAlarmID > 1 {
		reg, err := alarm.Restore(state.Alarms, state.Fired, alarm.ID(state.NextAlarmID))
		if err != nil {
			return fmt.Errorf("server: restore registry: %w", err)
		}
		reg.ApplyLifecycleStates(state.Lifecycle)
		e.ReplaceRegistry(reg)
		e.syncAlarmGauges(reg)
	}
	for _, c := range state.Clients {
		sh := e.shardFor(alarm.UserID(c.User))
		sh.mu.Lock()
		sh.m[alarm.UserID(c.User)] = &clientState{
			strategy:     c.Strategy,
			maxHeight:    int(c.MaxHeight),
			reliable:     c.Reliable,
			pendingFired: append([]uint64(nil), c.PendingFired...),
			lastSeq:      c.LastSeq,
			lastActive:   e.now(),
		}
		sh.mu.Unlock()
	}
	e.sessMu.Lock()
	if e.sessions == nil {
		e.sessions = make(map[uint64]alarm.UserID)
	}
	for _, s := range state.Sessions {
		e.sessions[s.Token] = alarm.UserID(s.User)
	}
	e.lastToken = state.LastToken
	e.sessMu.Unlock()
	e.epoch.Store(state.Epoch)
	return nil
}

// DurableState captures the full durable state of the engine, normalized
// for deterministic snapshots. It is installed as the store's state
// source; no caller of store.Append holds engine locks, so taking them
// here cannot deadlock a concurrent checkpoint.
func (e *Engine) DurableState() *store.State {
	reg := e.reg.Load()
	st := &store.State{
		NextAlarmID: uint64(reg.NextID()),
		Alarms:      reg.All(),
		Fired:       reg.FiredPairs(),
		Lifecycle:   reg.LifecycleStates(),
	}
	for user, cs := range e.clientsSnapshot() {
		cs.mu.Lock()
		st.Clients = append(st.Clients, store.ClientRec{
			User:         uint64(user),
			Strategy:     cs.strategy,
			MaxHeight:    uint8(cs.maxHeight),
			Reliable:     cs.reliable,
			PendingFired: append([]uint64(nil), cs.pendingFired...),
			LastSeq:      cs.lastSeq,
		})
		cs.mu.Unlock()
	}
	e.sessMu.Lock()
	for tok, user := range e.sessions {
		st.Sessions = append(st.Sessions, store.SessionRec{Token: tok, User: uint64(user)})
	}
	st.LastToken = e.lastToken
	e.sessMu.Unlock()
	st.Epoch = e.epoch.Load()
	st.Normalize()
	return st
}

// Store returns the durable backend, nil for a memory-only engine.
func (e *Engine) Store() *store.Store { return e.wal }

// logRecord appends one record to the durable log; a memory-only engine
// logs nothing. An append failure is fatal (store.ErrCrashed): the caller
// must withhold its response, because the mutation it covers would not
// survive recovery.
func (e *Engine) logRecord(rec store.Record) error {
	if e.wal == nil {
		return nil
	}
	return e.wal.Append(rec)
}

// logRecords appends a batch of records as one atomic group commit — a
// single WAL write and fsync for the whole batch. Same failure
// discipline as logRecord: on error the caller withholds every response
// the batch covers.
func (e *Engine) logRecords(recs []store.Record) error {
	if e.wal == nil || len(recs) == 0 {
		return nil
	}
	return e.wal.AppendBatch(recs)
}

// logFired logs one user's delivered firings for a single update: the
// legacy FiredRec for the combined event list plus one TransitionRec per
// lifecycle event (carrying the machine state replay needs). With no
// lifecycle events this stays the single-record append the one-shot path
// has always issued; with them, the group lands atomically so recovery
// never sees a firing without its transition (or vice versa).
func (e *Engine) logFired(user uint64, fired, transitions []uint64) error {
	if len(fired) == 0 && len(transitions) == 0 {
		return nil
	}
	all := fired
	if len(transitions) > 0 {
		all = append(append(make([]uint64, 0, len(fired)+len(transitions)), fired...), transitions...)
	}
	if len(transitions) == 0 {
		return e.logRecord(store.FiredRec{User: user, Alarms: all})
	}
	tick := e.tick.Load()
	recs := make([]store.Record, 0, 1+len(transitions))
	recs = append(recs, store.FiredRec{User: user, Alarms: all})
	for _, ev := range transitions {
		recs = append(recs, store.TransitionRec{User: user, Event: ev, Tick: tick, Delivered: true})
	}
	return e.logRecords(recs)
}

// InstallAlarms durably installs a batch of alarms: registry insertion,
// then one InstallRec per alarm (carrying the assigned ID) before the IDs
// are returned to the caller.
func (e *Engine) InstallAlarms(alarms []alarm.Alarm) ([]alarm.ID, error) {
	reg := e.reg.Load()
	ids, err := reg.InstallBatch(alarms)
	if err != nil {
		return nil, err
	}
	e.InvalidatePublicBitmaps()
	e.syncAlarmGauges(reg)
	for _, id := range ids {
		a, ok := reg.Get(id)
		if !ok {
			continue
		}
		if err := e.logRecord(store.InstallRec{Alarm: a}); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// InstallAlarmsAssigned durably installs alarms that already carry their
// globally assigned IDs — the cluster path, where every shard must agree
// on every alarm's identity. One InstallRec per alarm is appended;
// InstallRec replay preserves the ID and advances the counter, so a
// recovered shard rebuilds the identical table.
func (e *Engine) InstallAlarmsAssigned(alarms []alarm.Alarm) error {
	reg := e.reg.Load()
	if err := reg.InstallAssigned(alarms); err != nil {
		return err
	}
	e.InvalidatePublicBitmaps()
	e.syncAlarmGauges(reg)
	for _, a := range alarms {
		if err := e.logRecord(store.InstallRec{Alarm: a}); err != nil {
			return err
		}
	}
	return nil
}

// RemoveAlarm durably cancels an alarm.
func (e *Engine) RemoveAlarm(id alarm.ID) (bool, error) {
	reg := e.reg.Load()
	if !reg.Remove(id) {
		return false, nil
	}
	e.InvalidatePublicBitmaps()
	e.syncAlarmGauges(reg)
	if err := e.logRecord(store.RemoveRec{ID: id}); err != nil {
		return true, err
	}
	return true, nil
}

// ExpireSessions reaps reliable sessions idle longer than ttl: the client
// state and every resume token for the user are dropped, an ExpireRec is
// logged per reaped session, and the count is returned. A client that
// expires mid-flight simply re-enrolls with a fresh Hello — its fired
// state lives in the registry, so no alarm fires twice.
func (e *Engine) ExpireSessions(ttl time.Duration) (int, error) {
	if ttl <= 0 {
		return 0, fmt.Errorf("server: non-positive session TTL %v", ttl)
	}
	cutoff := e.now().Add(-ttl)
	var expired []alarm.UserID
	for user, cs := range e.clientsSnapshot() {
		cs.mu.Lock()
		idle := cs.reliable && !cs.lastActive.IsZero() && cs.lastActive.Before(cutoff)
		cs.mu.Unlock()
		if idle {
			expired = append(expired, user)
		}
	}
	// Deterministic reap (and log) order.
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, user := range expired {
		sh := e.shardFor(user)
		sh.mu.Lock()
		delete(sh.m, user)
		sh.mu.Unlock()
		e.sessMu.Lock()
		for tok, u := range e.sessions {
			if u == user {
				delete(e.sessions, tok)
			}
		}
		e.sessMu.Unlock()
	}
	e.met.AddSessionsExpired(uint64(len(expired)))
	for _, user := range expired {
		if err := e.logRecord(store.ExpireRec{User: uint64(user)}); err != nil {
			return len(expired), err
		}
	}
	return len(expired), nil
}

// now returns the engine clock (overridable in tests; only session
// expiry consults it, so simulations stay deterministic).
func (e *Engine) now() time.Time {
	if e.nowFn != nil {
		return e.nowFn()
	}
	return time.Now()
}
