package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/wire"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe(4)
	defer a.Close()
	want := wire.PositionUpdate{User: 1, Seq: 2, Pos: geom.Pt(3, 4)}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("got %v, want %v", got, want)
	}
	// And the reverse direction.
	if err := b.Send(wire.Ack{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if m, err := a.Recv(); err != nil || m.(wire.Ack).Seq != 2 {
		t.Errorf("reverse direction: %v %v", m, err)
	}
}

func TestPipeClose(t *testing.T) {
	a, b := Pipe(1)
	a.Close()
	if err := a.Send(wire.Ack{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close: %v", err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("Recv after close: %v", err)
	}
}

func TestPipeBlockedRecvUnblocksOnClose(t *testing.T) {
	a, b := Pipe(1)
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	a.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Errorf("blocked Recv returned %v", err)
	}
}

func TestFaultyDropsDeterministically(t *testing.T) {
	run := func() ([]uint32, int) {
		a, b := Pipe(4096)
		f := Faulty(a, FaultSchedule{Seed: 42, DropProb: 0.5}, 0)
		for i := 0; i < 1000; i++ {
			if err := f.Send(wire.Ack{Seq: uint32(i)}); err != nil {
				t.Fatal(err)
			}
		}
		var got []uint32
		p := Poller(b)
		for {
			m, ok, err := p.TryRecv()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, m.(wire.Ack).Seq)
		}
		return got, f.Stats().Dropped
	}
	got1, dropped := run()
	if dropped < 400 || dropped > 600 {
		t.Errorf("dropped %d of 1000 at p=0.5", dropped)
	}
	if len(got1)+dropped != 1000 {
		t.Errorf("delivered %d + dropped %d != 1000", len(got1), dropped)
	}
	// Same seed, same drop pattern message-for-message.
	got2, _ := run()
	if !reflect.DeepEqual(got1, got2) {
		t.Error("drop pattern not deterministic across identical runs")
	}
}

func TestFaultyDelayDupReorder(t *testing.T) {
	a, b := Pipe(4096)
	p := Poller(b)
	drain := func() []uint32 {
		var got []uint32
		for {
			m, ok, err := p.TryRecv()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return got
			}
			got = append(got, m.(wire.Ack).Seq)
		}
	}

	// Delay every message by exactly 2 ticks.
	f := Faulty(a, FaultSchedule{Seed: 1, DelayProb: 1, MaxDelayTicks: 1}, 0)
	if err := f.Send(wire.Ack{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if got := drain(); len(got) != 0 {
		t.Fatalf("delayed message delivered early: %v", got)
	}
	if err := f.Advance(1); err != nil {
		t.Fatal(err)
	}
	if got := drain(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("after Advance: %v", got)
	}

	// Duplicate every message.
	a2, b2 := Pipe(16)
	p2 := Poller(b2)
	f2 := Faulty(a2, FaultSchedule{Seed: 1, DupProb: 1}, 0)
	if err := f2.Send(wire.Ack{Seq: 7}); err != nil {
		t.Fatal(err)
	}
	m1, ok1, _ := p2.TryRecv()
	m2, ok2, _ := p2.TryRecv()
	if !ok1 || !ok2 || m1.(wire.Ack).Seq != 7 || m2.(wire.Ack).Seq != 7 {
		t.Fatalf("duplicate not delivered twice: %v %v %v %v", m1, ok1, m2, ok2)
	}

	// Reorder: first message held, second overtakes it.
	a3, b3 := Pipe(16)
	p3 := Poller(b3)
	f3 := Faulty(a3, FaultSchedule{Seed: 1, ReorderProb: 1, Until: 1}, 0)
	if err := f3.Send(wire.Ack{Seq: 10}); err != nil { // held (tick 0 active)
		t.Fatal(err)
	}
	if err := f3.Advance(1); err != nil { // tick 1: schedule inactive
		t.Fatal(err)
	}
	// Hold was flushed by Advance; send another and check order overall.
	if err := f3.Send(wire.Ack{Seq: 11}); err != nil {
		t.Fatal(err)
	}
	var seqs []uint32
	for {
		m, ok, err := p3.TryRecv()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seqs = append(seqs, m.(wire.Ack).Seq)
	}
	if !reflect.DeepEqual(seqs, []uint32{10, 11}) {
		t.Fatalf("advance-flushed hold order: %v", seqs)
	}

	// Reorder within a tick: held message overtaken by the next send.
	a4, b4 := Pipe(16)
	p4 := Poller(b4)
	f4 := Faulty(a4, FaultSchedule{Seed: 99, ReorderProb: 1, Until: 1}, 0)
	if err := f4.Send(wire.Ack{Seq: 20}); err != nil { // held
		t.Fatal(err)
	}
	if err := f4.Advance(5); err != nil { // exits window but flushes hold
		t.Fatal(err)
	}
	if err := f4.Send(wire.Ack{Seq: 21}); err != nil {
		t.Fatal(err)
	}
	seqs = nil
	for {
		m, ok, err := p4.TryRecv()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seqs = append(seqs, m.(wire.Ack).Seq)
	}
	if !reflect.DeepEqual(seqs, []uint32{20, 21}) {
		t.Fatalf("got %v", seqs)
	}
}

func TestFaultyReorderOvertake(t *testing.T) {
	a, b := Pipe(16)
	p := Poller(b)
	// Window covers both sends, but seed/probability only holds some:
	// with ReorderProb 1 every plain send is held, so interleave delivery
	// via a second send whose hold-flush happens in deliverLocked. Use a
	// schedule where reorder triggers on the first draw only.
	f := Faulty(a, FaultSchedule{Seed: 1, ReorderProb: 1, Until: 0}, 0)
	if err := f.Send(wire.Ack{Seq: 1}); err != nil { // held
		t.Fatal(err)
	}
	// Second send is also "reordered": joins the hold queue.
	if err := f.Send(wire.Ack{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.Advance(1); err != nil { // flush holds in FIFO order
		t.Fatal(err)
	}
	var seqs []uint32
	for {
		m, ok, err := p.TryRecv()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seqs = append(seqs, m.(wire.Ack).Seq)
	}
	if !reflect.DeepEqual(seqs, []uint32{1, 2}) {
		t.Fatalf("got %v", seqs)
	}
}

func TestFaultyPartitionAndReset(t *testing.T) {
	a, b := Pipe(64)
	p := Poller(b)
	f := Faulty(a, FaultSchedule{
		Seed:       7,
		Partitions: []Window{{From: 5, Until: 10}},
		ResetAt:    []int{20},
	}, 0)
	if err := f.Send(wire.Ack{Seq: 0}); err != nil { // tick 0: delivered
		t.Fatal(err)
	}
	if err := f.Advance(5); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(wire.Ack{Seq: 1}); err != nil { // partitioned
		t.Fatal(err)
	}
	if err := f.Advance(10); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(wire.Ack{Seq: 2}); err != nil { // partition over
		t.Fatal(err)
	}
	var seqs []uint32
	for {
		m, ok, err := p.TryRecv()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seqs = append(seqs, m.(wire.Ack).Seq)
	}
	if !reflect.DeepEqual(seqs, []uint32{0, 2}) {
		t.Fatalf("partition delivery: %v", seqs)
	}
	st := f.Stats()
	if st.PartitionDrops != 1 {
		t.Errorf("partition drops = %d", st.PartitionDrops)
	}
	// Reset fires crossing tick 20; the connection dies for both ends.
	if err := f.Advance(25); !errors.Is(err, ErrClosed) {
		t.Fatalf("Advance over reset: %v", err)
	}
	if err := f.Send(wire.Ack{Seq: 3}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after reset: %v", err)
	}
	if _, _, err := p.TryRecv(); !errors.Is(err, ErrClosed) {
		t.Errorf("peer TryRecv after reset: %v", err)
	}
	if f.Stats().Resets != 1 {
		t.Errorf("resets = %d", f.Stats().Resets)
	}
	// A fresh incarnation starting after the reset tick must not replay it.
	a2, _ := Pipe(16)
	f2 := Faulty(a2, FaultSchedule{Seed: 7, ResetAt: []int{20}}, 25)
	if err := f2.Advance(30); err != nil {
		t.Fatalf("spent reset refired: %v", err)
	}
	if f2.Stats().Resets != 0 {
		t.Errorf("spent reset counted: %d", f2.Stats().Resets)
	}
}

// TestFaultyConcurrentSendRace hammers one FaultyConn from many
// goroutines while another advances the clock; run with -race this
// catches any unguarded math/rand or queue state.
func TestFaultyConcurrentSendRace(t *testing.T) {
	a, b := Pipe(1 << 16)
	f := Faulty(a, FaultSchedule{
		Seed: 3, DropProb: 0.2, DupProb: 0.2, DelayProb: 0.2,
		MaxDelayTicks: 3, ReorderProb: 0.2,
		Partitions: []Window{{From: 10, Until: 20}},
	}, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = f.Send(wire.Ack{Seq: uint32(g*1000 + i)})
				_ = f.Stats()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for tick := 1; tick <= 50; tick++ {
			_ = f.Advance(tick)
		}
	}()
	// Concurrently drain the peer so sends never block on a full pipe.
	done := make(chan struct{})
	go func() {
		for {
			if _, err := b.Recv(); err != nil {
				return
			}
		}
	}()
	wg.Wait()
	_ = f.Advance(100) // release stragglers
	f.Close()
	close(done)
	st := f.Stats()
	if st.Sent != 4000 {
		t.Errorf("sent = %d", st.Sent)
	}
}

func TestBufferAdaptsConn(t *testing.T) {
	a, b := Pipe(4)
	p := Buffer(b, 8)
	if _, ok, err := p.TryRecv(); ok || err != nil {
		t.Fatalf("empty TryRecv: %v %v", ok, err)
	}
	if err := a.Send(wire.Ack{Seq: 5}); err != nil {
		t.Fatal(err)
	}
	// The pump goroutine needs a moment to move the message across.
	var got wire.Message
	for i := 0; i < 1000; i++ {
		m, ok, err := p.TryRecv()
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			got = m
			break
		}
		runtime.Gosched()
	}
	if got == nil || got.(wire.Ack).Seq != 5 {
		t.Fatalf("buffered TryRecv got %v", got)
	}
	a.Close()
	for i := 0; i < 1000; i++ {
		if _, _, err := p.TryRecv(); err != nil {
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("unexpected close error: %v", err)
			}
			return
		}
		runtime.Gosched()
	}
	t.Fatal("buffered conn never reported close")
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []wire.Message{
		wire.Register{User: 5, Strategy: wire.StrategyPBSR, MaxHeight: 3},
		wire.PositionUpdate{User: 5, Seq: 1, Pos: geom.Pt(10, 20)},
		wire.SafePeriod{Seq: 1, Ticks: 30},
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("got %v, want %v", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("expected EOF at end, got %v", err)
	}
}

func TestFrameRejectsHostileLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("zero frame accepted")
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, wire.Ack{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(data)); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestTCPConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		nc, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		conn := NewTCP(nc)
		defer conn.Close()
		m, err := conn.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		upd, ok := m.(wire.PositionUpdate)
		if !ok {
			t.Errorf("server got %v", m)
			return
		}
		conn.Send(wire.RectRegion{Seq: upd.Seq, Rect: geom.R(0, 0, 10, 10)})
	}()

	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Send(wire.PositionUpdate{User: 9, Seq: 7, Pos: geom.Pt(1, 2)}); err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if rr, ok := resp.(wire.RectRegion); !ok || rr.Seq != 7 {
		t.Errorf("client got %v", resp)
	}
	wg.Wait()
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestConcurrentSends(t *testing.T) {
	a, b := Pipe(4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := a.Send(wire.Ack{Seq: uint32(g*1000 + i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < 800; i++ {
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
}
