package sabre_test

import (
	"fmt"

	sabre "github.com/sabre-geo/sabre"
)

// Example walks a client toward a private alarm and prints the delivered
// alert — the complete monitoring loop of the library.
func Example() {
	svc, err := sabre.NewService(sabre.ServiceConfig{
		Universe: sabre.Rect{MinX: -100, MinY: -100, MaxX: 10100, MaxY: 10100},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	id, _ := svc.InstallAlarm(sabre.Alarm{
		Scope:  sabre.Private,
		Owner:  1,
		Region: sabre.RectAround(sabre.Pt(5000, 5000), 400),
	})
	svc.RegisterClient(1, sabre.StrategyMWPSR, 0)
	mon := sabre.NewMonitor(1, sabre.StrategyMWPSR)

	for tick := 0; tick < 300; tick++ {
		pos := sabre.Pt(2000+float64(tick)*20, 5000) // driving east at 20 m/s
		report := mon.Tick(tick, pos)
		if report == nil {
			continue
		}
		responses, _ := svc.HandleUpdate(*report)
		for _, msg := range responses {
			if fired, ok := msg.(sabre.AlarmFired); ok {
				for _, a := range fired.Alarms {
					fmt.Printf("alarm %d fired with %d reports sent\n", a, mon.MessagesSent())
				}
			}
			mon.Handle(tick, msg)
		}
		if len(responses) == 0 {
			mon.Acknowledge()
		}
	}
	_ = id
	// Output:
	// alarm 1 fired with 4 reports sent
}

// ExampleComputeRectRegion computes a maximum weighted perimeter safe
// region directly, without running a service.
func ExampleComputeRectRegion() {
	cell := sabre.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	alarms := []sabre.Rect{sabre.RectAround(sabre.Pt(800, 500), 200)}
	region := sabre.ComputeRectRegion(sabre.Pt(300, 500), cell, alarms, sabre.RectRegionOptions{})
	fmt.Printf("safe region %v avoids the alarm: %v\n", region, !region.Overlaps(alarms[0]))
	// Output:
	// safe region [0.00,700.00]x[0.00,1000.00] avoids the alarm: true
}

// ExampleComputeBitmapRegion encodes a pyramid bitmap safe region and
// queries it.
func ExampleComputeBitmapRegion() {
	cell := sabre.Rect{MinX: 0, MinY: 0, MaxX: 900, MaxY: 900}
	alarms := []sabre.Rect{sabre.RectAround(sabre.Pt(450, 450), 150)}
	region, err := sabre.ComputeBitmapRegion(cell, 3, alarms)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("coverage %.2f, centre safe: %v, corner safe: %v\n",
		region.Coverage, region.Contains(sabre.Pt(450, 450)), region.Contains(sabre.Pt(50, 50)))
	// Output:
	// coverage 0.97, centre safe: false, corner safe: true
}

// ExampleSteadyMotion shows the weighted variant: a motion model biases
// the safe region toward the client's heading.
func ExampleSteadyMotion() {
	model, err := sabre.SteadyMotion(1, 32)
	if err != nil {
		fmt.Println(err)
		return
	}
	cell := sabre.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	alarms := []sabre.Rect{
		{MinX: 0, MinY: 780, MaxX: 1000, MaxY: 820},
		{MinX: 0, MinY: 180, MaxX: 1000, MaxY: 220},
	}
	// Heading east (0 rad): the region keeps the full east-west extent.
	region := sabre.ComputeRectRegion(sabre.Pt(500, 500), cell, alarms,
		sabre.RectRegionOptions{Motion: model, Heading: 0})
	fmt.Printf("width %.0f m, height %.0f m\n", region.Width(), region.Height())
	// Output:
	// width 1000 m, height 560 m
}
