package motion

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/sabre-geo/sabre/internal/geom"
)

func integratePDF(m Model, lo, hi float64, steps int) float64 {
	h := (hi - lo) / float64(steps)
	sum := 0.0
	for i := 0; i < steps; i++ {
		sum += m.PDF(lo+(float64(i)+0.5)*h) * h
	}
	return sum
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		y, z    float64
		wantErr bool
	}{
		{"paper default", 1, 32, false},
		{"z=2", 1, 2, false},
		{"y/z = 1 invalid", 4, 4, true},
		{"y/z > 1 invalid", 8, 4, true},
		{"negative y", -1, 4, true},
		{"z < 1", 0.5, 0.5, true},
		{"y=0 uniform", 0, 4, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := New(tt.y, tt.z)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%v,%v) err = %v, wantErr %v", tt.y, tt.z, err, tt.wantErr)
			}
			if err == nil && tt.y == 0 && !m.IsUniform() {
				t.Error("y=0 should give the uniform model")
			}
		})
	}
}

func TestUniformPDF(t *testing.T) {
	m := Uniform()
	want := 1 / (2 * math.Pi)
	for _, phi := range []float64{0, 1, -2, math.Pi, -math.Pi} {
		if got := m.PDF(phi); math.Abs(got-want) > 1e-12 {
			t.Errorf("PDF(%v) = %v, want %v", phi, got, want)
		}
	}
	if got := m.SectorProb(0, math.Pi); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SectorProb half circle = %v", got)
	}
	if got := m.SectorProb(-math.Pi, math.Pi); math.Abs(got-1) > 1e-12 {
		t.Errorf("SectorProb full circle = %v", got)
	}
}

func TestPDFNormalization(t *testing.T) {
	for _, z := range []float64{2, 4, 8, 16, 32} {
		m := MustNew(1, z)
		if got := integratePDF(m, -math.Pi, math.Pi, 100000); math.Abs(got-1) > 1e-6 {
			t.Errorf("z=%v: integral = %v, want 1", z, got)
		}
	}
}

// TestPDFShape checks the qualitative properties of Figure 1(b): symmetry,
// a flat plateau on [0, π/z), monotone non-increasing in |φ|, forward bias.
func TestPDFShape(t *testing.T) {
	for _, z := range []float64{2, 4, 8} {
		m := MustNew(1, z)
		// Symmetry.
		for _, phi := range []float64{0.1, 0.5, 1.2, 2.9} {
			if math.Abs(m.PDF(phi)-m.PDF(-phi)) > 1e-12 {
				t.Errorf("z=%v: PDF not symmetric at %v", z, phi)
			}
		}
		// Plateau: constant on [0, π/z).
		plateau := m.PDF(0)
		if got := m.PDF(math.Pi/z - 1e-9); math.Abs(got-plateau) > 1e-12 {
			t.Errorf("z=%v: plateau broken: PDF(π/z-) = %v vs PDF(0) = %v", z, got, plateau)
		}
		// Decreases after the first band.
		if got := m.PDF(math.Pi/z + 1e-9); got >= plateau {
			t.Errorf("z=%v: no decrease past π/z: %v >= %v", z, got, plateau)
		}
		// Monotone non-increasing in |φ|.
		prev := math.Inf(1)
		for k := 0; k <= 64; k++ {
			phi := float64(k) / 64 * math.Pi
			v := m.PDF(phi)
			if v > prev+1e-12 {
				t.Errorf("z=%v: PDF increased at %v", z, phi)
			}
			prev = v
		}
		// Forward bias: heavier than uniform near 0, lighter near π.
		uniform := 1 / (2 * math.Pi)
		if m.PDF(0) <= uniform {
			t.Errorf("z=%v: PDF(0) = %v not above uniform", z, m.PDF(0))
		}
		if m.PDF(math.Pi) >= uniform {
			t.Errorf("z=%v: PDF(π) = %v not below uniform", z, m.PDF(math.Pi))
		}
		// Strictly positive everywhere (soundness of weighted safe regions).
		if m.PDF(math.Pi) <= 0 {
			t.Errorf("z=%v: PDF(π) not positive", z)
		}
	}
}

// Larger z concentrates the same y/z bias into finer bands; the peak
// density should not decrease as z grows with y/z fixed at the paper's
// Figure 1(b) style sweep (y=1, z in {2,4,8}).
func TestPDFPeakOrdering(t *testing.T) {
	p2 := MustNew(1, 2).PDF(0)
	p4 := MustNew(1, 4).PDF(0)
	p8 := MustNew(1, 8).PDF(0)
	if !(p2 > p4 && p4 > p8) {
		t.Errorf("peak ordering: z=2:%v z=4:%v z=8:%v; want decreasing", p2, p4, p8)
	}
	// All peaks above uniform.
	u := 1 / (2 * math.Pi)
	for _, p := range []float64{p2, p4, p8} {
		if p <= u {
			t.Errorf("peak %v not above uniform %v", p, u)
		}
	}
}

func TestSectorProbAgainstNumericIntegration(t *testing.T) {
	m := MustNew(1, 4)
	tests := []struct{ lo, hi float64 }{
		{0, math.Pi / 4},
		{-math.Pi / 4, math.Pi / 4},
		{math.Pi / 2, math.Pi},
		{-math.Pi, math.Pi},
		{-3, -1},
		{2.5, 3.1},
		{3, 4}, // crosses π, wraps
		{-4, -3},
	}
	for _, tt := range tests {
		want := integratePDF(m, tt.lo, tt.hi, 200000)
		got := m.SectorProb(tt.lo, tt.hi)
		if math.Abs(got-want) > 1e-4 {
			t.Errorf("SectorProb(%v,%v) = %v, want %v", tt.lo, tt.hi, got, want)
		}
	}
	if got := m.SectorProb(1, 1); got != 0 {
		t.Errorf("empty sector = %v", got)
	}
	if got := m.SectorProb(2, 1); got != 0 {
		t.Errorf("inverted sector = %v", got)
	}
	if got := m.SectorProb(-10, 10); got != 1 {
		t.Errorf("super-full sector = %v", got)
	}
}

// Property: SectorProb is additive: P(a,c) = P(a,b) + P(b,c).
func TestQuickSectorAdditivity(t *testing.T) {
	m := MustNew(1, 8)
	f := func(a, b, c float64) bool {
		xs := []float64{clampAngle(a), clampAngle(b), clampAngle(c)}
		lo, mid, hi := sort3(xs[0], xs[1], xs[2])
		total := m.SectorProb(lo, hi)
		split := m.SectorProb(lo, mid) + m.SectorProb(mid, hi)
		return math.Abs(total-split) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func clampAngle(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, math.Pi)
}

func sort3(a, b, c float64) (lo, mid, hi float64) {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return a, b, c
}

func TestHeading(t *testing.T) {
	h, ok := Heading(geom.Pt(0, 0), geom.Pt(1, 1))
	if !ok || math.Abs(h-math.Pi/4) > 1e-12 {
		t.Errorf("Heading = %v ok=%v", h, ok)
	}
	if _, ok := Heading(geom.Pt(3, 3), geom.Pt(3, 3)); ok {
		t.Error("identical fixes should report ok=false")
	}
}

func TestSideWeights(t *testing.T) {
	m := MustNew(1, 8)
	// Heading east: the right side should carry the most mass.
	r, tp, l, b := m.SideWeights(0)
	sum := r + tp + l + b
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("side weights sum = %v, want 1", sum)
	}
	if !(r > tp && r > b && r > l) {
		t.Errorf("heading east: right %v should dominate (top %v left %v bottom %v)", r, tp, l, b)
	}
	if math.Abs(tp-b) > 1e-9 {
		t.Errorf("heading east: top %v and bottom %v should be symmetric", tp, b)
	}
	if l >= tp {
		t.Errorf("heading east: left %v should be smallest (top %v)", l, tp)
	}
	// Heading north: top dominates.
	_, tp2, _, b2 := m.SideWeights(math.Pi / 2)
	if tp2 <= b2 {
		t.Errorf("heading north: top %v should beat bottom %v", tp2, b2)
	}
	// Uniform model: all sides equal.
	ur, ut, ul, ub := Uniform().SideWeights(1.234)
	for _, w := range []float64{ur, ut, ul, ub} {
		if math.Abs(w-0.25) > 1e-12 {
			t.Errorf("uniform side weight = %v, want 0.25", w)
		}
	}
}

func TestQuadrantWeights(t *testing.T) {
	m := MustNew(1, 8)
	// Heading along +x+y diagonal: quadrant I dominates, III smallest.
	w := m.QuadrantWeights(math.Pi / 4)
	sum := w[0] + w[1] + w[2] + w[3]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("quadrant weights sum = %v", sum)
	}
	if !(w[0] > w[1] && w[0] > w[3] && w[0] > w[2]) {
		t.Errorf("quadrant I should dominate: %v", w)
	}
	if !(w[2] < w[1] && w[2] < w[3]) {
		t.Errorf("quadrant III should be smallest: %v", w)
	}
	// Symmetry: II and IV equal for diagonal heading.
	if math.Abs(w[1]-w[3]) > 1e-9 {
		t.Errorf("quadrants II and IV should tie: %v", w)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid params should panic")
		}
	}()
	MustNew(10, 2)
}

func TestHeadingTracker(t *testing.T) {
	var h HeadingTracker
	// First fix: no heading yet.
	if _, ok := h.Observe(geom.Pt(0, 0)); ok {
		t.Error("heading before any movement")
	}
	// Steady east: converges to 0.
	for i := 1; i <= 10; i++ {
		h.Observe(geom.Pt(float64(i*10), 0))
	}
	got, ok := h.Observe(geom.Pt(110, 0))
	if !ok || math.Abs(got) > 1e-9 {
		t.Errorf("steady east heading = %v ok=%v", got, ok)
	}
	// One noisy fix barely moves the EMA.
	noisy, _ := h.Observe(geom.Pt(115, 8))
	if math.Abs(noisy) > math.Pi/4 {
		t.Errorf("single noisy fix swung heading to %v", noisy)
	}
	// A sustained turn eventually wins.
	for i := 1; i <= 30; i++ {
		got, _ = h.Observe(geom.Pt(115, 8+float64(i*10)))
	}
	if math.Abs(got-math.Pi/2) > 0.05 {
		t.Errorf("sustained north turn: heading = %v, want ≈π/2", got)
	}
	// Parked: heading persists.
	kept, ok := h.Observe(geom.Pt(115, 308))
	if !ok || math.Abs(kept-got) > 1e-9 {
		t.Errorf("parked heading = %v ok=%v, want %v", kept, ok, got)
	}
	// Reset clears state but keeps Alpha.
	h2 := HeadingTracker{Alpha: 0.9}
	h2.Observe(geom.Pt(0, 0))
	h2.Observe(geom.Pt(1, 0))
	h2.Reset()
	if h2.Alpha != 0.9 {
		t.Error("Reset lost Alpha")
	}
	if _, ok := h2.Observe(geom.Pt(5, 5)); ok {
		t.Error("Reset did not clear position history")
	}
}

func TestHeadingTrackerAlphaOne(t *testing.T) {
	h := HeadingTracker{Alpha: 1}
	h.Observe(geom.Pt(0, 0))
	h.Observe(geom.Pt(10, 0))
	got, ok := h.Observe(geom.Pt(10, 10)) // raw two-fix heading: north
	if !ok || math.Abs(got-math.Pi/2) > 1e-9 {
		t.Errorf("alpha=1 heading = %v, want π/2", got)
	}
}
