package sim

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/client"
	"github.com/sabre-geo/sabre/internal/cluster"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/store"
	"github.com/sabre-geo/sabre/internal/transport"
	"github.com/sabre-geo/sabre/internal/wire"
)

// LifecycleScenario is a fully scripted lifecycle workload: every user's
// position is a deterministic function of the tick, so the exact set of
// (user, packed event) deliveries is known in advance and identical runs
// against different harnesses (clean, faulty links, crashing server,
// sharded cluster) must produce identical sets. Scripted paths replace
// the road-network mobility of the one-shot sims because lifecycle
// equality needs controlled dwell times: every region (or pair-radius)
// crossing must hold long enough that delayed, dropped or crash-deferred
// reports still sample each phase exactly once.
type LifecycleScenario struct {
	Universe      geom.Rect
	MaxSpeed      float64
	TickSeconds   float64
	DurationTicks int
	// Paths[i] scripts user i+1's position per tick. Paths must respect
	// MaxSpeed — the engine's safe regions and pair caps assume it.
	Paths []func(tick int) geom.Point
	// Alarms install in order before the first tick, so IDs are 1..N in
	// every harness (the cluster assigns globally in the same order).
	Alarms []alarm.Alarm
}

// LifecycleEvent is one delivered (user, packed event) pair. One-shot
// firings appear as raw alarm IDs, lifecycle transitions as packed
// events (alarm.PackEvent) — both exactly once per user.
type LifecycleEvent struct {
	User  uint64
	Event uint64
}

// SortLifecycleEvents orders events for set comparison.
func SortLifecycleEvents(evs []LifecycleEvent) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].User != evs[j].User {
			return evs[i].User < evs[j].User
		}
		return evs[i].Event < evs[j].Event
	})
}

// Waypoint anchors a scripted path: the user is at At exactly at Tick.
type Waypoint struct {
	Tick int
	At   geom.Point
}

// WaypointPath interpolates linearly between consecutive waypoints and
// holds the first/last position outside their tick range.
func WaypointPath(wps ...Waypoint) func(int) geom.Point {
	return func(tick int) geom.Point {
		if len(wps) == 0 {
			return geom.Point{}
		}
		if tick <= wps[0].Tick {
			return wps[0].At
		}
		for i := 1; i < len(wps); i++ {
			if tick <= wps[i].Tick {
				a, b := wps[i-1], wps[i]
				f := float64(tick-a.Tick) / float64(b.Tick-a.Tick)
				return geom.Pt(a.At.X+(b.At.X-a.At.X)*f, a.At.Y+(b.At.Y-a.At.Y)*f)
			}
		}
		return wps[len(wps)-1].At
	}
}

// StaticPath pins a user to one position for the whole run.
func StaticPath(p geom.Point) func(int) geom.Point {
	return func(int) geom.Point { return p }
}

// DefaultLifecycleScenario builds the reference lifecycle workload used
// by the delivery-equality tests and `make lifecycle`:
//
//   - user 1 crosses a continuous alarm region twice (enter/exit,
//     re-arm, enter/exit — occurrences 1 and 2) and a one-shot region
//     once on the way;
//   - users 2 and 3 are the endpoints of a moving-anchor pair alarm
//     (radius 200 m): user 2 approaches until the pair enters, then
//     user 3 walks away until it exits. Their x-positions straddle the
//     population median, so a cluster run that splits the single shard
//     mid-run separates the endpoints across shards;
//   - user 7 walks through an expired composite risk zone (TTL 40
//     ticks, reached at ~tick 120 — must never fire) into a live one
//     whose inner factor pushes the severity past the threshold;
//   - users 4, 5, 6, 8, 9 are static filler pinning the split median
//     between the pair endpoints.
//
// All dwell times are ≥ 60 ticks — far beyond the session resend window
// (5 ticks), fault delays (≤ 3 ticks) and scripted crash downtimes
// (≤ 25 ticks) — so every harness samples every phase.
func DefaultLifecycleScenario() LifecycleScenario {
	return LifecycleScenario{
		Universe:      geom.R(0, 0, 4000, 4000),
		MaxSpeed:      20,
		TickSeconds:   1,
		DurationTicks: 560,
		Paths: []func(int) geom.Point{
			WaypointPath( // user 1: continuous double-crossing + one-shot
				Waypoint{0, geom.Pt(1000, 3000)},
				Waypoint{30, geom.Pt(1000, 3000)},
				Waypoint{110, geom.Pt(2000, 3000)},
				Waypoint{190, geom.Pt(2000, 3000)},
				Waypoint{270, geom.Pt(3000, 3000)},
				Waypoint{300, geom.Pt(3000, 3000)},
				Waypoint{380, geom.Pt(2000, 3000)},
				Waypoint{440, geom.Pt(2000, 3000)},
				Waypoint{520, geom.Pt(1000, 3000)},
			),
			WaypointPath( // user 2: pair owner, approaches the anchor
				Waypoint{40, geom.Pt(600, 1000)},
				Waypoint{100, geom.Pt(990, 1000)},
			),
			WaypointPath( // user 3: pair anchor, walks away after the split
				Waypoint{200, geom.Pt(1015, 1000)},
				Waypoint{235, geom.Pt(1600, 1000)},
			),
			StaticPath(geom.Pt(500, 1000)),  // user 4
			StaticPath(geom.Pt(1005, 960)),  // user 5: the split median
			StaticPath(geom.Pt(3500, 1000)), // user 6
			WaypointPath( // user 7: expired composite, then live composite
				Waypoint{20, geom.Pt(3000, 3600)},
				Waypoint{120, geom.Pt(2000, 3600)},
				Waypoint{160, geom.Pt(2000, 3600)},
				Waypoint{240, geom.Pt(1200, 3600)},
			),
			StaticPath(geom.Pt(700, 1000)), // user 8
			StaticPath(geom.Pt(800, 960)),  // user 9
		},
		Alarms: []alarm.Alarm{
			{ // ID 1: continuous region, re-arming, no cooldown
				Scope: alarm.Private, Owner: 1, Kind: alarm.KindContinuous,
				Region: geom.R(1800, 2800, 2200, 3200),
			},
			{ // ID 2: pair proximity, both endpoints subscribed
				Scope: alarm.Shared, Owner: 2, Subscribers: []alarm.UserID{2},
				Kind: alarm.KindPair, Anchor: 3, Radius: 200,
			},
			{ // ID 3: composite that expires (tick 40) before user 7 arrives
				Scope: alarm.Private, Owner: 7, Kind: alarm.KindComposite,
				Factors: []alarm.Factor{
					{Center: geom.Pt(2000, 3600), Radius: 250, Weight: 1.0},
				},
				Threshold: 0.5, ExpiresAt: 40,
			},
			{ // ID 4: live composite — rect factor 0.4 + inner circle 0.5;
				// the severity reaches 0.9 exactly when the inner circle is
				// entered, so the quantized payload is position-independent.
				Scope: alarm.Private, Owner: 7, Kind: alarm.KindComposite,
				Factors: []alarm.Factor{
					{Region: geom.R(900, 3300, 1500, 3900), Weight: 0.4},
					{Center: geom.Pt(1200, 3600), Radius: 120, Weight: 0.5},
				},
				Threshold: 0.8,
			},
			{ // ID 5: legacy one-shot riding along
				Scope: alarm.Private, Owner: 1,
				Region: geom.R(2500, 2950, 2600, 3050),
			},
		},
	}
}

func (s LifecycleScenario) engineConfig(sc StrategyConfig) server.Config {
	return server.Config{
		Universe:      s.Universe,
		CellAreaM2:    sc.CellAreaKM2 * 1e6,
		Model:         sc.Model,
		PyramidParams: pyramidParams(sc),
		MaxSpeed:      s.MaxSpeed,
		TickSeconds:   s.TickSeconds,
		Costs:         metrics.DefaultCosts(),
	}
}

func normalizeLifecycleStrategy(sc *StrategyConfig) {
	if sc.PyramidHeight == 0 {
		sc.PyramidHeight = 5
	}
	if sc.BitmapMaxBits == 0 {
		sc.BitmapMaxBits = 2048
	}
	if sc.CellAreaKM2 == 0 {
		sc.CellAreaKM2 = 2.5
	}
}

// RunLifecycleFaulty executes the scenario against a single in-memory
// engine with every client behind a fault-injected link. A plan with
// zero fault probabilities is the clean baseline run. The logical clock
// is driven explicitly: SetTick precedes each tick's reports, so TTL
// expiry and staleness slack advance identically in every harness.
func RunLifecycleFaulty(scn LifecycleScenario, sc StrategyConfig, plan FaultPlan) ([]LifecycleEvent, error) {
	normalizeLifecycleStrategy(&sc)
	eng, err := server.New(scn.engineConfig(sc))
	if err != nil {
		return nil, err
	}
	if _, err := eng.InstallAlarms(scn.Alarms); err != nil {
		return nil, err
	}

	n := len(scn.Paths)
	perClient := make([]metrics.Client, n)
	sessions := make([]*client.Session, n)
	links := make([]*faultLink, n)
	incarnation := make([]int, n)
	curTick := 0
	var events []LifecycleEvent

	for i := 0; i < n; i++ {
		i := i
		user := uint64(i + 1)
		cl := client.New(user, sc.Strategy, &perClient[i])
		scfg := plan.Session
		scfg.MaxHeight = uint8(sc.PyramidHeight)
		scfg.JitterSeed = plan.Seed ^ int64(user)<<17
		dial := func() (transport.Conn, error) {
			incarnation[i]++
			cEnd, sEnd := transport.Pipe(4096)
			ln := &faultLink{
				user: user,
				cli:  transport.Faulty(cEnd, plan.schedFor(user, 0, incarnation[i]), curTick),
				srv:  transport.Faulty(sEnd, plan.schedFor(user, 1, incarnation[i]), curTick),
			}
			links[i] = ln
			return ln.cli, nil
		}
		sessions[i] = client.NewSession(cl, dial, scfg, &perClient[i])
		sessions[i].OnFired = func(ids []uint64) {
			for _, id := range ids {
				events = append(events, LifecycleEvent{User: user, Event: id})
			}
		}
	}
	eng.SetPusher(func(user alarm.UserID, msgs []wire.Message) {
		idx := int(user) - 1
		if idx < 0 || idx >= n || links[idx] == nil {
			return
		}
		for _, m := range msgs {
			if links[idx].srv.Send(m) != nil {
				return
			}
		}
	})

	var wall time.Duration
	total := scn.DurationTicks + plan.DrainTicks
	for tick := 0; tick < total; tick++ {
		curTick = tick
		if err := eng.SetTick(uint64(tick)); err != nil {
			return nil, fmt.Errorf("sim: set tick %d: %w", tick, err)
		}
		for i, ln := range links {
			if ln == nil {
				continue
			}
			if ln.cli.Advance(tick) != nil || ln.srv.Advance(tick) != nil {
				links[i] = nil
			}
		}
		for i, s := range sessions {
			if tick < scn.DurationTicks {
				s.Step(tick, scn.Paths[i](tick))
			} else {
				s.Quiesce(tick)
			}
		}
		for i, ln := range links {
			if ln == nil {
				continue
			}
			if err := serveFaultLink(eng, ln, &wall); err != nil {
				if err == transport.ErrClosed {
					links[i] = nil
					continue
				}
				return nil, fmt.Errorf("tick %d user %d: %w", tick, ln.user, err)
			}
		}
	}
	for i, s := range sessions {
		if qs := s.QueueLen(); qs > 0 {
			return nil, fmt.Errorf("sim: user %d still has %d undrained reports — extend DrainTicks", i+1, qs)
		}
	}
	SortLifecycleEvents(events)
	return events, nil
}

// RunLifecycleCrashing executes the scenario against a durable engine
// that is killed (WAL tail mangled) and recovered at the scripted ticks.
// Recovery must replay every lifecycle machine to its pre-crash phase
// and occurrence count: a lost Inside phase would mint a duplicate
// enter, a resurrected expired composite a spurious severity event.
func RunLifecycleCrashing(scn LifecycleScenario, sc StrategyConfig, plan CrashPlan, dataDir string) ([]LifecycleEvent, error) {
	normalizeLifecycleStrategy(&sc)
	if dataDir == "" {
		tmp, err := os.MkdirTemp("", "sabre-lifecycle-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	}
	engCfg := scn.engineConfig(sc)

	n := len(scn.Paths)
	links := make([]*crashLink, n)
	var eng *server.Engine
	boot := func() error {
		st, state, info, err := store.Open(dataDir, store.Options{
			Fsync:         plan.Fsync,
			SnapshotEvery: plan.SnapshotEvery,
		})
		if err != nil {
			return err
		}
		eng, err = server.NewDurable(engCfg, st, state, info)
		if err != nil {
			return err
		}
		eng.SetPusher(func(user alarm.UserID, msgs []wire.Message) {
			idx := int(user) - 1
			if idx < 0 || idx >= n || links[idx] == nil {
				return
			}
			for _, m := range msgs {
				if links[idx].srv.Send(m) != nil {
					return
				}
			}
		})
		return nil
	}
	if err := boot(); err != nil {
		return nil, err
	}
	if eng.Registry().Len() == 0 {
		if _, err := eng.InstallAlarms(scn.Alarms); err != nil {
			return nil, err
		}
	}

	perClient := make([]metrics.Client, n)
	sessions := make([]*client.Session, n)
	curTick := 0
	var events []LifecycleEvent
	for i := 0; i < n; i++ {
		i := i
		user := uint64(i + 1)
		cl := client.New(user, sc.Strategy, &perClient[i])
		scfg := plan.Session
		scfg.MaxHeight = uint8(sc.PyramidHeight)
		scfg.JitterSeed = plan.Seed ^ int64(user)<<17
		dial := func() (transport.Conn, error) {
			if eng == nil {
				return nil, fmt.Errorf("sim: server down")
			}
			cEnd, sEnd := transport.Pipe(4096)
			links[i] = &crashLink{user: user, cli: cEnd, srv: transport.Poller(sEnd)}
			return cEnd, nil
		}
		sessions[i] = client.NewSession(cl, dial, scfg, &perClient[i])
		sessions[i].OnFired = func(ids []uint64) {
			for _, id := range ids {
				events = append(events, LifecycleEvent{User: user, Event: id})
			}
		}
	}

	rng := rand.New(rand.NewSource(plan.Seed ^ 0x5ABE))
	crashIdx := 0
	downUntil := -1
	var wall time.Duration
	total := scn.DurationTicks + plan.DrainTicks
	for tick := 0; tick < total; tick++ {
		curTick = tick
		_ = curTick
		if eng != nil && crashIdx < len(plan.Crashes) && tick >= plan.Crashes[crashIdx].Tick {
			ev := plan.Crashes[crashIdx]
			crashIdx++
			walPath := eng.Store().WALPath()
			eng.Store().Kill()
			if err := store.MangleTail(walPath, ev.Tear, rng); err != nil {
				return nil, fmt.Errorf("sim: crash %d mangle: %w", crashIdx, err)
			}
			for i, ln := range links {
				if ln != nil {
					ln.cli.Close()
					links[i] = nil
				}
			}
			eng = nil
			downUntil = tick + ev.Down
		}
		if eng == nil && tick >= downUntil {
			if err := boot(); err != nil {
				return nil, fmt.Errorf("sim: recovery at tick %d: %w", tick, err)
			}
		}
		if eng != nil {
			if err := eng.SetTick(uint64(tick)); err != nil {
				return nil, fmt.Errorf("sim: set tick %d: %w", tick, err)
			}
		}
		for i, s := range sessions {
			if tick < scn.DurationTicks {
				s.Step(tick, scn.Paths[i](tick))
			} else {
				s.Quiesce(tick)
			}
		}
		if eng == nil {
			continue
		}
		for i, ln := range links {
			if ln == nil {
				continue
			}
			if err := serveCrashLink(eng, ln, &wall); err != nil {
				if err == transport.ErrClosed {
					links[i] = nil
					continue
				}
				return nil, fmt.Errorf("tick %d user %d: %w", tick, ln.user, err)
			}
		}
	}
	for i, s := range sessions {
		if qs := s.QueueLen(); qs > 0 {
			return nil, fmt.Errorf("sim: user %d still has %d undrained reports — extend DrainTicks", i+1, qs)
		}
	}
	if crashIdx != len(plan.Crashes) {
		return nil, fmt.Errorf("sim: only %d of %d crashes fired", crashIdx, len(plan.Crashes))
	}
	SortLifecycleEvents(events)
	return events, nil
}

// RunLifecycleCluster executes the scenario against a sharded cluster:
// reports flow through a cluster.Router, scripted repartitions split or
// merge shards mid-run (separating pair endpoints across shards), and
// scripted shard crashes recover from per-shard durable stores. The
// router's anchor fan-out is what keeps a split pair transitioning —
// this harness is its end-to-end proof.
func RunLifecycleCluster(scn LifecycleScenario, sc StrategyConfig, plan ClusterPlan, dataDir string) ([]LifecycleEvent, *cluster.PartitionMap, error) {
	normalizeLifecycleStrategy(&sc)
	if plan.Shards <= 0 {
		plan.Shards = 1
	}
	if dataDir == "" {
		tmp, err := os.MkdirTemp("", "sabre-lifecycle-cluster-")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	}
	clCfg := cluster.Config{
		Shards:  plan.Shards,
		Engine:  scn.engineConfig(sc),
		DataDir: dataDir,
		Store: store.Options{
			Fsync:         plan.Fsync,
			SnapshotEvery: plan.SnapshotEvery,
		},
	}
	cl, err := cluster.New(clCfg)
	if err != nil {
		return nil, nil, err
	}
	defer func() { cl.Close() }()
	if _, err := cl.InstallAlarms(scn.Alarms); err != nil {
		return nil, nil, err
	}
	rt := cluster.NewRouter(cl)

	n := len(scn.Paths)
	links := make([]*crashLink, n)
	perClient := make([]metrics.Client, n)
	sessions := make([]*client.Session, n)
	var events []LifecycleEvent
	for i := 0; i < n; i++ {
		i := i
		user := uint64(i + 1)
		c := client.New(user, sc.Strategy, &perClient[i])
		scfg := plan.Session
		scfg.MaxHeight = uint8(sc.PyramidHeight)
		scfg.JitterSeed = plan.Seed ^ int64(user)<<17
		dial := func() (transport.Conn, error) {
			cEnd, sEnd := transport.Pipe(4096)
			links[i] = &crashLink{user: user, cli: cEnd, srv: transport.Poller(sEnd)}
			return cEnd, nil
		}
		sessions[i] = client.NewSession(c, dial, scfg, &perClient[i])
		sessions[i].OnFired = func(ids []uint64) {
			for _, id := range ids {
				events = append(events, LifecycleEvent{User: user, Event: id})
			}
		}
	}

	rng := rand.New(rand.NewSource(plan.Seed ^ 0x5ABE))
	crashIdx, repIdx := 0, 0
	downUntil := make(map[int]int)
	var wall time.Duration
	total := scn.DurationTicks + plan.DrainTicks
	for tick := 0; tick < total; tick++ {
		for crashIdx < len(plan.Crashes) && tick >= plan.Crashes[crashIdx].Tick {
			ev := plan.Crashes[crashIdx]
			crashIdx++
			if err := cl.KillShard(ev.Shard, ev.Tear, rng); err != nil {
				return nil, nil, fmt.Errorf("sim: crash %d: %w", crashIdx, err)
			}
			downUntil[ev.Shard] = tick + ev.Down
		}
		for _, s := range sortedKeys(downUntil) {
			if tick >= downUntil[s] {
				if err := cl.RecoverShard(s); err != nil {
					return nil, nil, fmt.Errorf("sim: recover shard %d at tick %d: %w", s, tick, err)
				}
				delete(downUntil, s)
			}
		}
		for repIdx < len(plan.Repartitions) && tick >= plan.Repartitions[repIdx].Tick {
			ev := plan.Repartitions[repIdx]
			repIdx++
			switch ev.Op {
			case "split":
				if _, err := cl.SplitShard(ev.Shard); err != nil {
					return nil, nil, fmt.Errorf("sim: split shard %d at tick %d: %w", ev.Shard, tick, err)
				}
			case "merge":
				if err := cl.MergeShards(ev.Into, ev.Shard); err != nil {
					return nil, nil, fmt.Errorf("sim: merge shard %d into %d at tick %d: %w", ev.Shard, ev.Into, tick, err)
				}
			default:
				return nil, nil, fmt.Errorf("sim: repartition %d: unknown op %q", repIdx, ev.Op)
			}
		}
		if err := cl.SetTick(uint64(tick)); err != nil {
			return nil, nil, fmt.Errorf("sim: set tick %d: %w", tick, err)
		}
		for i, s := range sessions {
			if tick < scn.DurationTicks {
				s.Step(tick, scn.Paths[i](tick))
			} else {
				s.Quiesce(tick)
			}
		}
		for i, ln := range links {
			if ln == nil {
				continue
			}
			if err := serveClusterLink(rt, ln, &wall); err != nil {
				if err == transport.ErrClosed {
					links[i] = nil
					continue
				}
				return nil, nil, fmt.Errorf("tick %d user %d: %w", tick, ln.user, err)
			}
		}
	}
	for i, s := range sessions {
		if qs := s.QueueLen(); qs > 0 {
			return nil, nil, fmt.Errorf("sim: user %d still has %d undrained reports — extend DrainTicks", i+1, qs)
		}
	}
	if crashIdx != len(plan.Crashes) {
		return nil, nil, fmt.Errorf("sim: only %d of %d crashes fired", crashIdx, len(plan.Crashes))
	}
	if repIdx != len(plan.Repartitions) {
		return nil, nil, fmt.Errorf("sim: only %d of %d repartitions fired", repIdx, len(plan.Repartitions))
	}
	SortLifecycleEvents(events)
	return events, cl.PartitionMap(), nil
}
