module github.com/sabre-geo/sabre

go 1.22
