// Heterogeneous clients: one service serving devices of very different
// capability at once — the flexibility argument of paper §4.
//
// Three device classes share one alarm workload and one server:
//
//   - "feature phone": safe-period processing (no client-side geometry),
//   - "budget phone":  MWPSR rectangles (one containment check per fix),
//   - "flagship":      PBSR pyramids at height 6 (finer safe regions,
//     more probes per check).
//
// The run prints per-class messages, checks and energy, showing the
// trade-off each class buys: weak devices spend uplink messages, strong
// devices spend local computation.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	sabre "github.com/sabre-geo/sabre"
)

const (
	perClass = 12
	ticks    = 600
	side     = 8000.0
)

type deviceClass struct {
	name      string
	strategy  sabre.Strategy
	maxHeight int
}

var classes = []deviceClass{
	{"feature phone (SP)", sabre.StrategySafePeriod, 0},
	{"budget phone (MWPSR)", sabre.StrategyMWPSR, 0},
	{"flagship (PBSR h=6)", sabre.StrategyPBSR, 6},
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	motion, err := sabre.SteadyMotion(1, 32)
	if err != nil {
		return err
	}
	svc, err := sabre.NewService(sabre.ServiceConfig{
		Universe:      sabre.Rect{MinX: -100, MinY: -100, MaxX: side + 100, MaxY: side + 100},
		CellAreaKM2:   2.5,
		Motion:        motion,
		PyramidHeight: 6,
	})
	if err != nil {
		return err
	}

	// A mixed alarm workload: public points of interest plus one private
	// reminder per user.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		if _, err := svc.InstallAlarm(sabre.Alarm{
			Scope:  sabre.Public,
			Owner:  999,
			Region: sabre.RectAround(sabre.Pt(rng.Float64()*side, rng.Float64()*side), 300+rng.Float64()*400),
		}); err != nil {
			return err
		}
	}

	type member struct {
		class int
		mon   *sabre.Monitor
		path  []sabre.Point
	}
	var fleet []member
	user := sabre.UserID(1)
	for ci, class := range classes {
		for k := 0; k < perClass; k++ {
			if _, err := svc.InstallAlarm(sabre.Alarm{
				Scope:  sabre.Private,
				Owner:  user,
				Region: sabre.RectAround(sabre.Pt(rng.Float64()*side, rng.Float64()*side), 250),
			}); err != nil {
				return err
			}
			if err := svc.RegisterClient(user, class.strategy, class.maxHeight); err != nil {
				return err
			}
			fleet = append(fleet, member{
				class: ci,
				mon:   sabre.NewMonitor(user, class.strategy),
				path:  randomWaypointPath(rng, ticks),
			})
			user++
		}
	}

	triggersPerClass := make([]int, len(classes))
	for tick := 0; tick < ticks; tick++ {
		for _, m := range fleet {
			report := m.mon.Tick(tick, m.path[tick])
			if report == nil {
				continue
			}
			responses, err := svc.HandleUpdate(*report)
			if err != nil {
				return err
			}
			for _, msg := range responses {
				if fired, ok := msg.(sabre.AlarmFired); ok {
					triggersPerClass[m.class] += len(fired.Alarms)
				}
				if err := m.mon.Handle(tick, msg); err != nil {
					return err
				}
			}
			if len(responses) == 0 {
				m.mon.Acknowledge()
			}
		}
	}

	fmt.Printf("%-22s %9s %9s %9s %10s\n", "device class", "alerts", "messages", "msgs/fix", "mWh/device")
	for ci, class := range classes {
		var msgs uint64
		var energy float64
		for _, m := range fleet {
			if m.class != ci {
				continue
			}
			msgs += m.mon.MessagesSent()
			energy += m.mon.EnergyMWh()
		}
		fmt.Printf("%-22s %9d %9d %8.1f%% %10.2f\n",
			class.name, triggersPerClass[ci], msgs,
			100*float64(msgs)/float64(perClass*ticks), energy/perClass)
	}
	fmt.Printf("\none server, one alarm table, three device classes — per-client\n")
	fmt.Printf("safe region resolution is negotiated at registration (paper §4).\n")
	return nil
}

// randomWaypointPath simulates motion between random waypoints at
// 8–20 m/s.
func randomWaypointPath(rng *rand.Rand, n int) []sabre.Point {
	out := make([]sabre.Point, 0, n)
	cur := sabre.Pt(rng.Float64()*side, rng.Float64()*side)
	target := cur
	speed := 8 + rng.Float64()*12
	for len(out) < n {
		if math.Hypot(target.X-cur.X, target.Y-cur.Y) < speed {
			target = sabre.Pt(rng.Float64()*side, rng.Float64()*side)
			speed = 8 + rng.Float64()*12
		}
		d := math.Hypot(target.X-cur.X, target.Y-cur.Y)
		cur = sabre.Pt(cur.X+(target.X-cur.X)/d*speed, cur.Y+(target.Y-cur.Y)/d*speed)
		out = append(out, cur)
	}
	return out
}
