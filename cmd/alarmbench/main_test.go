package main

import (
	"strings"
	"testing"
)

func TestFmtCount(t *testing.T) {
	tests := []struct {
		in   uint64
		want string
	}{
		{0, "0"},
		{9999, "9999"},
		{10_000, "10.0k"},
		{246_200, "246.2k"},
		{9_999_999, "10000.0k"},
		{10_000_000, "10.0M"},
		{36_000_000, "36.0M"},
	}
	for _, tt := range tests {
		if got := fmtCount(tt.in); got != tt.want {
			t.Errorf("fmtCount(%d) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestWorkloadScales(t *testing.T) {
	for _, scale := range []string{"small", "medium", "full"} {
		cfg, err := workload(options{scale: scale, seed: 1}, -1)
		if err != nil {
			t.Fatalf("%s: %v", scale, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s config invalid: %v", scale, err)
		}
	}
	if _, err := workload(options{scale: "galactic"}, -1); err == nil {
		t.Error("unknown scale accepted")
	}
	// Public fraction override applies.
	cfg, _ := workload(options{scale: "small", seed: 1}, 0.2)
	if cfg.PublicFraction != 0.2 {
		t.Errorf("PublicFraction = %v", cfg.PublicFraction)
	}
	// -1 keeps the default.
	cfg, _ = workload(options{scale: "small", seed: 1}, -1)
	if cfg.PublicFraction != 0.10 {
		t.Errorf("default PublicFraction = %v", cfg.PublicFraction)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"no-such-figure"}); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v", err)
	}
	if err := run([]string{}); err == nil {
		t.Error("no experiment accepted")
	}
}

func TestRunFig1b(t *testing.T) {
	// fig1b is pure computation; it must succeed instantly at any scale.
	if err := run([]string{"-scale", "small", "fig1b"}); err != nil {
		t.Fatal(err)
	}
}
