package cluster

import (
	"errors"
	"os"
	"testing"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/motion"
	"github.com/sabre-geo/sabre/internal/pyramid"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/store"
	"github.com/sabre-geo/sabre/internal/wire"
)

// newReplCluster builds a durable replicated test cluster: replicas
// follower logs per shard, promotion after two silent ticks.
func newReplCluster(t testing.TB, cols, rows, replicas int, ack bool, dataDir string) *Cluster {
	t.Helper()
	c, err := New(Config{
		Cols: cols,
		Rows: rows,
		Engine: server.Config{
			Universe:      clusterUniverse,
			CellAreaM2:    2.5e6,
			Model:         motion.MustNew(1, 32),
			PyramidParams: pyramid.DefaultParams(5),
			MaxSpeed:      30,
			TickSeconds:   1,
			Costs:         metrics.DefaultCosts(),
		},
		DataDir:      dataDir,
		Replicas:     replicas,
		PromoteAfter: 2,
		ReplAck:      ack,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestReplicationStatusTracksPrimary: after a pump tick every follower
// has applied everything the primary acknowledged — zero lag.
func TestReplicationStatusTracksPrimary(t *testing.T) {
	for _, ack := range []bool{false, true} {
		name := "async"
		if ack {
			name = "ack"
		}
		t.Run(name, func(t *testing.T) {
			c := newReplCluster(t, 2, 1, 2, ack, t.TempDir())
			rt := NewRouter(c)
			hello(t, rt, 1)
			update(t, rt, 1, 1, geom.Pt(2000, 5000))
			update(t, rt, 1, 2, geom.Pt(2100, 5000))
			c.TickReplication(1)

			rep := c.replicator(0)
			if rep == nil {
				t.Fatal("shard 0 has no replicator")
			}
			st := rep.Status()
			if st.Followers != 2 {
				t.Fatalf("followers = %d, want 2", st.Followers)
			}
			if st.StreamPos == 0 {
				t.Fatal("no records streamed")
			}
			if st.Lag != 0 || st.MinAcked != st.StreamPos {
				t.Fatalf("lag = %d (acked %d of %d), want 0", st.Lag, st.MinAcked, st.StreamPos)
			}
			// The snapshot surfaces through ShardSnapshots for operators.
			shards := c.ShardSnapshots()
			if shards[0].Replication == nil || shards[0].Replication.Followers != 2 {
				t.Fatalf("ShardSnapshots missing replication status: %+v", shards[0].Replication)
			}
		})
	}
}

// TestFailoverPromotesFollower: a killed primary's shard comes back on
// its follower within PromoteAfter ticks — sessions intact, the
// partition-map epoch bumped, and the router serving again with no
// recovery call.
func TestFailoverPromotesFollower(t *testing.T) {
	c := newReplCluster(t, 2, 1, 1, false, t.TempDir())
	rt := NewRouter(c)
	hello(t, rt, 1)
	update(t, rt, 1, 1, geom.Pt(2000, 5000)) // shard 0
	hello(t, rt, 2)
	update(t, rt, 2, 1, geom.Pt(8000, 5000)) // shard 1
	c.TickReplication(1)
	epochBefore := c.Epoch()

	if err := c.KillShard(0, store.TearNone, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.HandleUpdate(wire.PositionUpdate{User: 1, Seq: 2, Pos: geom.Pt(2000, 5000)}); err == nil {
		t.Fatal("update served while shard 0 down")
	}
	c.TickReplication(2)
	c.TickReplication(3) // silent for 2 ticks: promotion fires here

	if !c.Up(0) {
		t.Fatal("shard 0 not promoted")
	}
	if got := c.Metrics().Snapshot().Promotions; got != 1 {
		t.Fatalf("Promotions = %d, want 1", got)
	}
	if c.Epoch() != epochBefore+1 {
		t.Fatalf("epoch = %d, want %d (promotion must bump the map epoch)", c.Epoch(), epochBefore+1)
	}
	if !c.Engine(0).HasSession(1) {
		t.Fatal("promoted shard lost user 1's session")
	}
	if _, err := rt.HandleUpdate(wire.PositionUpdate{User: 1, Seq: 2, Pos: geom.Pt(2000, 5000)}); err != nil {
		t.Fatalf("update after promotion: %v", err)
	}
	// The replica count was restored with a replacement follower.
	if st := c.replicator(0).Status(); st.Followers != 1 {
		t.Fatalf("followers after promotion = %d, want 1", st.Followers)
	}
}

// TestFencingRejectsDeposedPrimary: a primary cut off by a network
// partition (engine detached, store alive) keeps acknowledging writes
// until promotion bumps the shard term — after which every append it
// tries is fenced, while every write it acknowledged before the
// promotion is present on the new primary.
func TestFencingRejectsDeposedPrimary(t *testing.T) {
	c := newReplCluster(t, 2, 1, 1, false, t.TempDir())
	rt := NewRouter(c)
	hello(t, rt, 1)
	update(t, rt, 1, 1, geom.Pt(2000, 5000))
	c.TickReplication(1)

	zombie, err := c.PartitionShard(0)
	if err != nil {
		t.Fatal(err)
	}
	// The deposed primary still acknowledges writes pre-promotion; the
	// replication buffer (which lives in the Replicator, not the store)
	// must carry them through the failover.
	if err := zombie.Register(wire.Register{User: 50, Strategy: wire.StrategyMWPSR, MaxHeight: 5}); err != nil {
		t.Fatalf("pre-promotion write on partitioned primary: %v", err)
	}

	c.TickReplication(2)
	c.TickReplication(3)
	if got := c.Metrics().Snapshot().Promotions; got != 1 {
		t.Fatalf("Promotions = %d, want 1", got)
	}

	// Every write the zombie acknowledged reached the promoted follower.
	if !c.Engine(0).HasSession(50) {
		t.Fatal("write acknowledged before promotion lost by failover")
	}
	// And nothing it tries now can be acknowledged.
	err = zombie.Register(wire.Register{User: 51, Strategy: wire.StrategyMWPSR, MaxHeight: 5})
	if !errors.Is(err, store.ErrFenced) {
		t.Fatalf("post-promotion write: got %v, want ErrFenced", err)
	}
	if got := zombie.Metrics().Snapshot().FencedWrites; got < 1 {
		t.Fatalf("FencedWrites = %d, want >= 1", got)
	}
	if c.Engine(0).HasSession(51) {
		t.Fatal("fenced write leaked onto the promoted primary")
	}
}

// TestPromotionSurvivesRestart: the durable primary pointer makes a
// promotion stick across a full cluster restart — New boots the shard
// from the promoted follower's directory, not the dead primary's.
func TestPromotionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Cols: 2, Rows: 1,
		Engine: server.Config{
			Universe:      clusterUniverse,
			CellAreaM2:    2.5e6,
			Model:         motion.MustNew(1, 32),
			PyramidParams: pyramid.DefaultParams(5),
			MaxSpeed:      30,
			TickSeconds:   1,
			Costs:         metrics.DefaultCosts(),
		},
		DataDir: dir, Replicas: 1, PromoteAfter: 2,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(c)
	hello(t, rt, 1)
	update(t, rt, 1, 1, geom.Pt(2000, 5000))
	c.TickReplication(1)
	if err := c.KillShard(0, store.TearNone, nil); err != nil {
		t.Fatal(err)
	}
	c.TickReplication(2)
	c.TickReplication(3)
	if !c.Up(0) {
		t.Fatal("shard 0 not promoted")
	}
	// More writes on the promoted primary, then a clean shutdown.
	if err := c.Engine(0).Register(wire.Register{User: 60, Strategy: wire.StrategyMWPSR, MaxHeight: 5}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Engine(0).HasSession(1) || !c2.Engine(0).HasSession(60) {
		t.Fatal("restart booted shard 0 from the deposed primary's directory")
	}
}

// TestPromotionSurvivesSecondRestart: after a promotion re-points a
// shard's primary to a follower directory, a restarted cluster must
// never re-allocate that directory name for a fresh follower —
// OpenFollower wipes its directory, which would silently destroy the
// live primary's acknowledged writes (they would only be missed on the
// restart after that, hence the second restart here).
func TestPromotionSurvivesSecondRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Cols: 2, Rows: 1,
		Engine: server.Config{
			Universe:      clusterUniverse,
			CellAreaM2:    2.5e6,
			Model:         motion.MustNew(1, 32),
			PyramidParams: pyramid.DefaultParams(5),
			MaxSpeed:      30,
			TickSeconds:   1,
			Costs:         metrics.DefaultCosts(),
		},
		DataDir: dir, Replicas: 1, PromoteAfter: 2,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(c)
	hello(t, rt, 1)
	update(t, rt, 1, 1, geom.Pt(2000, 5000))
	c.TickReplication(1)
	if err := c.KillShard(0, store.TearNone, nil); err != nil {
		t.Fatal(err)
	}
	c.TickReplication(2)
	c.TickReplication(3)
	if !c.Up(0) {
		t.Fatal("shard 0 not promoted")
	}
	if err := c.Engine(0).Register(wire.Register{User: 60, Strategy: wire.StrategyMWPSR, MaxHeight: 5}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart 1: the shard boots from the promoted follower's directory
	// and replication re-enables. No new follower may land on any slot's
	// current primary directory.
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	primaryDirs := make(map[string]bool)
	for _, sl := range c2.slotList() {
		if sl.dir != "" {
			primaryDirs[sl.dir] = true
		}
	}
	c2.repMu.Lock()
	for s, rep := range c2.reps {
		rep.mu.Lock()
		for _, fl := range rep.followers {
			if primaryDirs[fl.log.Dir()] {
				t.Errorf("shard %d follower allocated on a live primary's directory %s", s, fl.log.Dir())
			}
		}
		rep.mu.Unlock()
	}
	c2.repMu.Unlock()
	if !c2.Engine(0).HasSession(1) || !c2.Engine(0).HasSession(60) {
		t.Fatal("restart 1 lost acknowledged writes")
	}
	if err := c2.Engine(0).Register(wire.Register{User: 61, Strategy: wire.StrategyMWPSR, MaxHeight: 5}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart 2: every write acknowledged in either incarnation is here.
	c3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	for _, u := range []alarm.UserID{1, 60, 61} {
		if !c3.Engine(0).HasSession(u) {
			t.Fatalf("restart 2 lost user %d's acknowledged write", u)
		}
	}
}

// TestCrashedAttachedPrimaryFailsOver: a primary that dies from a
// spontaneous WAL write failure stays attached to its slot (nothing
// detaches it the way KillShard does) — TickReplication must detach
// the dead engine itself so the shard fails over instead of being
// skipped forever.
func TestCrashedAttachedPrimaryFailsOver(t *testing.T) {
	c := newReplCluster(t, 2, 1, 1, false, t.TempDir())
	rt := NewRouter(c)
	hello(t, rt, 1)
	update(t, rt, 1, 1, geom.Pt(2000, 5000))
	c.TickReplication(1)

	// Arm a spontaneous failure on the next append: the store dies but
	// the engine stays attached. (With no restart, lifetime appends and
	// the stream position coincide, so Pos()+1 names the next append.)
	st := c.Engine(0).Store()
	st.SetCrashPoints([]store.CrashPoint{{AfterAppends: int(st.Pos()) + 1, FlipBit: -1}})
	if err := c.Engine(0).Register(wire.Register{User: 70, Strategy: wire.StrategyMWPSR, MaxHeight: 5}); err == nil {
		t.Fatal("append on a crashing store was acknowledged")
	}
	if c.Engine(0) == nil {
		t.Fatal("engine detached before any replication tick")
	}

	c.TickReplication(2) // detaches the crashed engine
	c.TickReplication(3)
	c.TickReplication(4) // silent for PromoteAfter ticks: promotion fires
	if !c.Up(0) {
		t.Fatal("crashed-but-attached primary never failed over")
	}
	if got := c.Metrics().Snapshot().Promotions; got != 1 {
		t.Fatalf("Promotions = %d, want 1", got)
	}
	if !c.Engine(0).HasSession(1) {
		t.Fatal("promoted shard lost user 1's session")
	}
	// User 70's register was never acknowledged; it must not reappear.
	if c.Engine(0).HasSession(70) {
		t.Fatal("unacknowledged write surfaced on the promoted shard")
	}
}

// TestPromotionRetriesAfterFailedAttempt: a promotion that fails after
// Promote has sealed and removed the chosen follower must restore it,
// so the next tick can retry — otherwise a shard with Replicas=1 stays
// down permanently on a transient failure.
func TestPromotionRetriesAfterFailedAttempt(t *testing.T) {
	dir := t.TempDir()
	c := newReplCluster(t, 2, 1, 1, false, dir)
	rt := NewRouter(c)
	hello(t, rt, 1)
	update(t, rt, 1, 1, geom.Pt(2000, 5000))
	c.TickReplication(1)
	if err := c.KillShard(0, store.TearNone, nil); err != nil {
		t.Fatal(err)
	}

	// Occupy the primary-pointer's temp path with a directory so the
	// pointer write — the last step of promotion — fails transiently.
	blocker := primaryPtrPath(dir, 0) + ".tmp"
	if err := os.MkdirAll(blocker, 0o755); err != nil {
		t.Fatal(err)
	}
	c.TickReplication(2)
	c.TickReplication(3) // promotion attempt fires here and fails
	if c.Up(0) {
		t.Fatal("promotion succeeded despite the pointer write failing")
	}
	if got := c.Metrics().Snapshot().Promotions; got != 0 {
		t.Fatalf("Promotions = %d after a failed attempt, want 0", got)
	}

	if err := os.RemoveAll(blocker); err != nil {
		t.Fatal(err)
	}
	c.TickReplication(4)
	if !c.Up(0) {
		t.Fatal("promotion not retried from the restored follower")
	}
	if got := c.Metrics().Snapshot().Promotions; got != 1 {
		t.Fatalf("Promotions = %d, want 1", got)
	}
	if !c.Engine(0).HasSession(1) {
		t.Fatal("promoted shard lost user 1's session")
	}
}

// TestSplitShardCutsAtMedian: a population-skewed shard splits at the
// median session position, not the geometric midpoint, so the halves
// carry comparable load.
func TestSplitShardCutsAtMedian(t *testing.T) {
	c := newTestCluster(t, 1, 1, "")
	rt := NewRouter(c)
	// Nine sessions: seven bunched on the far left, two on the right.
	// The geometric midpoint (x=5000) would split them 7/2; the median
	// (x=1500) splits them 4/5.
	xs := []float64{1100, 1200, 1300, 1400, 1500, 1600, 1700, 8000, 9000}
	for i, x := range xs {
		u := uint64(i + 1)
		hello(t, rt, u)
		update(t, rt, u, 1, geom.Pt(x, 5000))
	}

	newShard, err := c.SplitShard(0)
	if err != nil {
		t.Fatal(err)
	}
	loRect, _ := c.PartitionMap().RectOf(0)
	if loRect.MaxX != 1500 {
		t.Fatalf("split cut at x=%v, want the median 1500", loRect.MaxX)
	}
	lo, hi := 0, 0
	for _, x := range xs {
		if x < loRect.MaxX {
			lo++
		} else {
			hi++
		}
	}
	if lo != 4 || hi != 5 {
		t.Fatalf("post-split population %d/%d, want 4/5", lo, hi)
	}
	if _, ok := c.PartitionMap().RectOf(newShard); !ok {
		t.Fatalf("new shard %d not on the map", newShard)
	}
}

// TestSplitShardFallsBackToMidpoint: with no resident positions the
// split reverts to the geometric midpoint.
func TestSplitShardFallsBackToMidpoint(t *testing.T) {
	c := newTestCluster(t, 1, 1, "")
	if _, err := c.SplitShard(0); err != nil {
		t.Fatal(err)
	}
	loRect, _ := c.PartitionMap().RectOf(0)
	if loRect.MaxX != 5000 {
		t.Fatalf("empty-shard split cut at x=%v, want midpoint 5000", loRect.MaxX)
	}
}

// TestSplitShardGCsOutOfFootprintAlarms: after a split shrinks the
// source's rectangle, alarms beyond its new margin are dropped from the
// source — the new shard adopted its copies before the commit.
func TestSplitShardGCsOutOfFootprintAlarms(t *testing.T) {
	c := newTestCluster(t, 1, 1, "")
	rt := NewRouter(c)
	// Sessions bunched on the left pull the median cut left, so the
	// right-hand alarm lands far outside the source's new margin.
	xs := []float64{1000, 1200, 1400, 1600, 9000}
	for i, x := range xs {
		u := uint64(i + 1)
		hello(t, rt, u)
		update(t, rt, u, 1, geom.Pt(x, 5000))
	}
	ids, err := c.InstallAlarms([]alarm.Alarm{
		{Scope: alarm.Private, Owner: 1, Region: geom.RectAround(geom.Pt(900, 5000), 100)},
		{Scope: alarm.Private, Owner: 5, Region: geom.RectAround(geom.Pt(9500, 5000), 100)},
	})
	if err != nil {
		t.Fatal(err)
	}
	left, right := ids[0], ids[1]

	newShard, err := c.SplitShard(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Engine(0).Registry().Get(left); !ok {
		t.Fatal("source dropped an alarm inside its footprint")
	}
	if _, ok := c.Engine(0).Registry().Get(right); ok {
		t.Fatal("source kept an alarm far outside its new margin")
	}
	if _, ok := c.Engine(newShard).Registry().Get(right); !ok {
		t.Fatal("new shard missing the adopted right-hand alarm")
	}
	if got := c.Metrics().Snapshot().AlarmsGCed; got < 1 {
		t.Fatalf("AlarmsGCed = %d, want >= 1", got)
	}
}
