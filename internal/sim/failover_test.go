package sim

import (
	"testing"

	"github.com/sabre-geo/sabre/internal/wire"
)

// failoverCases are the safe-region strategies the failover acceptance
// checks cover (SP is excluded for the same cadence reasons as the
// cluster equality tests).
var failoverCases = []struct {
	name string
	sc   StrategyConfig
}{
	{"MWPSR", StrategyConfig{Strategy: wire.StrategyMWPSR}},
	{"GBSR", StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 1}},
	{"PBSR", StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 5}},
}

// assertFailoverRun checks one failover run against its single-server
// baseline: exact (user, alarm) set equality, every scripted kill
// answered by a promotion rather than a recovery, and no handoff left
// parked when a follower was promotable.
func assertFailoverRun(t *testing.T, name string, base, failed *Report, plan FailoverPlan) {
	t.Helper()
	basePairs := pairCounts(base.Triggers)
	failPairs := pairCounts(failed.Triggers)
	for p, c := range failPairs {
		if c != 1 {
			t.Errorf("pair (user %d, alarm %d) delivered %d times under failover", p[0], p[1], c)
		}
		if basePairs[p] == 0 {
			t.Errorf("pair (user %d, alarm %d) delivered under failover but not single-server", p[0], p[1])
		}
	}
	for p := range basePairs {
		if failPairs[p] == 0 {
			t.Errorf("pair (user %d, alarm %d) lost under failover", p[0], p[1])
		}
	}
	if len(base.Triggers) == 0 {
		t.Fatal("workload produced no triggers; the equality check is vacuous")
	}
	cm := failed.Cluster
	if cm == nil {
		t.Fatal("failover run reported no cluster metrics")
	}
	if cm.Handoffs == 0 {
		t.Error("no cross-shard handoffs — the partition grid never split the trace")
	}
	if cm.ShardCrashes != uint64(len(plan.Kills)) {
		t.Errorf("ShardCrashes = %d, want %d", cm.ShardCrashes, len(plan.Kills))
	}
	if cm.ShardRecoveries != 0 {
		t.Errorf("ShardRecoveries = %d, want 0 — every revival must be a promotion", cm.ShardRecoveries)
	}
	if cm.Promotions != uint64(len(plan.Kills)) {
		t.Errorf("Promotions = %d, want %d (one per kill)", cm.Promotions, len(plan.Kills))
	}
	if cm.Merges != 1 {
		t.Errorf("Merges = %d, want 1 (the mid-drain kill's merge)", cm.Merges)
	}
	// With followers promotable, no handoff stays parked: every parked
	// import completed once the promotion revived its target.
	if cm.HandoffsParked != cm.HandoffsFailedOver {
		t.Errorf("HandoffsParked = %d but HandoffsFailedOver = %d — a handoff stayed parked despite a promotable follower",
			cm.HandoffsParked, cm.HandoffsFailedOver)
	}
	if cm.ReplRecordsStreamed == 0 {
		t.Error("no replication records streamed — followers never tailed the WAL")
	}
	t.Logf("%s: %d baseline triggers, %d failover deliveries, %d handoffs (%d parked, %d failed over), %d promotions, %d records streamed, equal sets",
		name, len(base.Triggers), len(failed.Triggers), cm.Handoffs, cm.HandoffsParked, cm.HandoffsFailedOver, cm.Promotions, cm.ReplRecordsStreamed)
}

// TestFailoverDeliveryEquality is the acceptance check for replicated
// failover: with one follower per shard, killing every primary
// mid-workload — two with mangled WAL tails, one mid-merge-drain, one
// after it absorbed a merge — and reviving each only by follower
// promotion must deliver exactly the same (user, alarm) set as the
// uninterrupted single-server run, for every safe-region strategy.
func TestFailoverDeliveryEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-strategy failover simulation")
	}
	w, err := BuildWorkload(SmallWorkload(11))
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultFailoverPlan(99, w.Config.DurationTicks)
	for _, tc := range failoverCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base, err := Run(w, tc.sc)
			if err != nil {
				t.Fatal(err)
			}
			failed, err := RunFailover(w, tc.sc, plan, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			assertFailoverRun(t, tc.name, base, failed, plan)
		})
	}
}

// TestFailoverBatchedDeliveryEquality repeats the failover acceptance
// check with client-side batching: each tick's reports coalesce into
// one UpdateBatch frame, and a batch straddling a dead shard must
// resend only the unserved updates after the promotion.
func TestFailoverBatchedDeliveryEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-strategy failover simulation")
	}
	w, err := BuildWorkload(SmallWorkload(11))
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultFailoverPlan(99, w.Config.DurationTicks)
	plan.Session.Batch = true
	for _, tc := range failoverCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base, err := Run(w, tc.sc)
			if err != nil {
				t.Fatal(err)
			}
			failed, err := RunFailover(w, tc.sc, plan, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if failed.UpdateBatches == 0 {
				t.Error("no update batches served — batching never engaged")
			}
			assertFailoverRun(t, tc.name, base, failed, plan)
		})
	}
}

// TestFailoverSyncReplication runs one strategy in ack mode (every
// acknowledged write applied to every follower before the append
// returns) — the zero-lag configuration must preserve delivery equality
// too.
func TestFailoverSyncReplication(t *testing.T) {
	if testing.Short() {
		t.Skip("failover simulation")
	}
	w, err := BuildWorkload(SmallWorkload(11))
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultFailoverPlan(99, w.Config.DurationTicks)
	plan.ReplAck = true
	sc := StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 5}
	base, err := Run(w, sc)
	if err != nil {
		t.Fatal(err)
	}
	failed, err := RunFailover(w, sc, plan, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	assertFailoverRun(t, "PBSR/ack", base, failed, plan)
}
