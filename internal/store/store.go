package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrCrashed is returned by every operation after the store has been
// killed — by a scripted CrashPoint, by Kill, or by a write failure. The
// policy is fail-stop: a store that cannot append durably must not keep
// acknowledging work, so the server treats ErrCrashed as fatal and the
// recovery path takes over on the next start.
var ErrCrashed = errors.New("store: crashed")

// ErrFenced is returned by Append when the store's fencing term has been
// overtaken: a follower was promoted and this store is a deposed primary.
// The policy matches ErrCrashed — the server withholds the response and
// stops serving — but the cause is distinguishable so the fenced-write
// counter and tests can observe rejected zombie appends.
var ErrFenced = errors.New("store: fenced: a newer primary holds this shard")

// Counters is the metrics hook the store reports into; internal/metrics
// Server satisfies it. A nil Counters is allowed.
type Counters interface {
	AddWALAppend(bytes int)
	AddWALFsync()
	AddSnapshot()
	AddRecovery(recordsReplayed int, truncatedBytes int64)
	AddFencedWrite()
}

// Options tunes a Store.
type Options struct {
	// Fsync syncs the WAL file after every append and snapshot write.
	// Disabling it trades machine-crash durability for throughput;
	// process-crash durability (what RunCrashing simulates) is unaffected
	// because appends are single write(2) calls.
	Fsync bool
	// SnapshotEvery checkpoints automatically after this many WAL appends
	// (0 disables automatic checkpoints; Checkpoint can still be called
	// explicitly, e.g. at clean shutdown).
	SnapshotEvery int
	// PendingCap bounds each recovered client's pending-firings set,
	// mirroring the engine's cap so replay reproduces its evictions
	// (0 means DefaultPendingCap).
	PendingCap int
	// Counters receives wal/snapshot/recovery metrics; nil is allowed.
	Counters Counters
}

// RecoveryInfo describes what Open found on disk.
type RecoveryInfo struct {
	// Gen is the generation recovered (snapshot + WAL file pair).
	Gen uint64
	// FromSnapshot is true when a snapshot file seeded the state.
	FromSnapshot bool
	// Replayed is the number of WAL records applied on top.
	Replayed int
	// TruncatedBytes is how many trailing bytes the recovery discarded
	// (torn final write, trailing garbage, or a corrupt CRC); the file is
	// repaired — truncated to the clean prefix — before appends resume.
	TruncatedBytes int64
	// TruncateReason says why the tail was discarded, empty when clean.
	TruncateReason string
}

// CrashPoint scripts a deterministic store kill for the fault-injection
// harness: on the AfterAppends-th Append (1-based, counted over the
// store's lifetime), only the first TearBytes bytes of the frame reach
// the file (clamped to the frame; a value past the frame length writes
// it whole — a record-boundary kill), then Garbage is appended, FlipBit
// flips the addressed bit (offset from the end of the file, when
// FlipBit >= 0), and the store dies: the append and everything after it
// returns ErrCrashed.
type CrashPoint struct {
	AfterAppends int
	TearBytes    int
	Garbage      []byte
	FlipBit      int64 // bit index counting back from EOF; -1 disables
}

// Store is the durable backend: one active WAL generation plus the
// snapshot that seeds it. Append is safe for concurrent use; Checkpoint
// serializes against appends.
type Store struct {
	dir  string
	opts Options

	mu          sync.Mutex
	gen         uint64
	wal         *os.File
	crashed     bool
	appends     int // appends since the last checkpoint
	appendsEver int // lifetime appends, for CrashPoint matching
	crashPoints []CrashPoint

	// pos is the lifetime record position: it advances by one per
	// appended record and survives checkpoint rotations, giving the
	// replication stream a monotonic coordinate.
	pos uint64
	// term is this store's fencing term; termSource reads the shard's
	// current term (shared with the replicator). When termSource reports
	// a term newer than ours, a follower was promoted and every further
	// append is rejected with ErrFenced.
	term       uint64
	termSource func() uint64

	// replSink receives one frame per appended record and per checkpoint
	// (the new snapshot generation). It is called with s.mu held —
	// before the append's caller can release its client-visible
	// response — so every acknowledged write reaches the sink. It must
	// not call back into the store.
	replSink func(ReplFrame)

	// stateSource captures the current full state for checkpoints; the
	// engine installs it. It is called with s.mu held, so it must not
	// call back into the store.
	stateSource func() *State
}

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.json", gen))
}

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", gen))
}

// Open recovers the durable state from dir (creating it if needed) and
// returns the store ready for appends, the recovered state, and a
// description of what recovery found. A torn or corrupt WAL tail is
// truncated away — never an error: it is the expected artifact of a
// crash mid-write, and every record it could hold was unacknowledged.
func Open(dir string, opts Options) (*Store, *State, RecoveryInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, RecoveryInfo{}, fmt.Errorf("store: %w", err)
	}
	gen, hasSnap, err := latestGen(dir)
	if err != nil {
		return nil, nil, RecoveryInfo{}, err
	}
	info := RecoveryInfo{Gen: gen, FromSnapshot: hasSnap}

	var base *State
	if hasSnap {
		f, err := os.Open(snapPath(dir, gen))
		if err != nil {
			return nil, nil, info, fmt.Errorf("store: %w", err)
		}
		base, err = readSnapshot(f)
		f.Close()
		if err != nil {
			return nil, nil, info, err
		}
	}
	b := newBuilder(base, opts.PendingCap)

	wp := walPath(dir, gen)
	buf, err := os.ReadFile(wp)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, info, fmt.Errorf("store: %w", err)
	}
	payloads, clean, reason := ScanFrames(buf)
	for _, p := range payloads {
		rec, err := DecodeRecord(p)
		if err != nil {
			// A frame that passed its CRC but does not decode is a format
			// error, not a torn write: refuse to guess.
			return nil, nil, info, fmt.Errorf("store: wal record %d: %w", info.Replayed, err)
		}
		b.apply(rec)
		info.Replayed++
	}
	info.TruncatedBytes = int64(len(buf) - clean)
	info.TruncateReason = reason
	if info.TruncatedBytes > 0 {
		// Repair: cut the damage off so new appends extend the clean
		// prefix instead of burying live records behind garbage.
		if err := os.Truncate(wp, int64(clean)); err != nil {
			return nil, nil, info, fmt.Errorf("store: repair wal: %w", err)
		}
	}

	wal, err := os.OpenFile(wp, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, info, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, gen: gen, wal: wal, pos: uint64(info.Replayed)}
	if opts.Counters != nil {
		opts.Counters.AddRecovery(info.Replayed, info.TruncatedBytes)
	}
	return s, b.finish(), info, nil
}

// latestGen scans dir for snapshot/WAL generations and returns the
// highest one plus whether it has a snapshot. Snapshot files are written
// via atomic rename, so any snap-*.json present is complete.
func latestGen(dir string) (uint64, bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, false, fmt.Errorf("store: %w", err)
	}
	var gens []uint64
	snaps := make(map[uint64]bool)
	seen := make(map[uint64]bool)
	for _, e := range entries {
		var g uint64
		if n, _ := fmt.Sscanf(e.Name(), "snap-%d.json", &g); n == 1 && filepath.Ext(e.Name()) == ".json" {
			snaps[g] = true
			if !seen[g] {
				seen[g], gens = true, append(gens, g)
			}
		} else if n, _ := fmt.Sscanf(e.Name(), "wal-%d.log", &g); n == 1 && filepath.Ext(e.Name()) == ".log" {
			if !seen[g] {
				seen[g], gens = true, append(gens, g)
			}
		}
	}
	if len(gens) == 0 {
		return 0, false, nil
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	g := gens[len(gens)-1]
	return g, snaps[g], nil
}

// SetStateSource installs the callback that captures the full current
// state for checkpoints. It must be set before automatic checkpoints can
// fire; Engine wiring does this in NewDurable.
func (s *Store) SetStateSource(f func() *State) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stateSource = f
}

// SetCounters installs (or replaces) the metrics sink. NewDurable uses it
// to point the store at the engine's counters, which do not exist yet
// when the store is opened.
func (s *Store) SetCounters(c Counters) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opts.Counters = c
}

// SetCrashPoints scripts deterministic kills for the crash-injection
// harness. Points match on the store's lifetime append count.
func (s *Store) SetCrashPoints(pts []CrashPoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashPoints = append([]CrashPoint(nil), pts...)
}

// Append frames, writes and (per Options.Fsync) syncs one record. It
// returns only after the bytes are handed to the OS — the caller releases
// the client-visible response afterwards, which is the write-ahead
// discipline. On any failure the store is dead (ErrCrashed) and stays so.
func (s *Store) Append(rec Record) error {
	payload := EncodeRecord(rec)
	frame := Frame(payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	if err := s.fenceCheckLocked(); err != nil {
		return err
	}
	s.appendsEver++
	for _, cp := range s.crashPoints {
		if cp.AfterAppends == s.appendsEver {
			s.executeCrashLocked(cp, frame)
			return ErrCrashed
		}
	}
	if _, err := s.wal.Write(frame); err != nil {
		s.crashed = true
		return fmt.Errorf("%w: %v", ErrCrashed, err)
	}
	if s.opts.Counters != nil {
		s.opts.Counters.AddWALAppend(len(frame))
	}
	if s.opts.Fsync {
		if err := s.wal.Sync(); err != nil {
			s.crashed = true
			return fmt.Errorf("%w: %v", ErrCrashed, err)
		}
		if s.opts.Counters != nil {
			s.opts.Counters.AddWALFsync()
		}
	}
	s.appends++
	s.pos++
	if s.replSink != nil {
		s.replSink(ReplFrame{Type: ReplRecord, Term: s.term, Gen: s.gen, Pos: s.pos, Payload: payload})
	}
	// Re-validate the term now that the sink has run. A promotion that
	// completed between the pre-write check and the sink call (Promote
	// holds only the replicator's lock, not ours) has already reset every
	// follower for resync — the frame the sink just delivered was
	// dropped, so acknowledging this append would lose it. The record
	// exists only in this deposed primary's own WAL: a duplicate if the
	// log ever rejoins, never a loss. The sink runs under the
	// replicator's lock and the term bumps before Promote takes it, so
	// if the frame was dropped the newer term is visible here.
	if err := s.fenceCheckLocked(); err != nil {
		return err
	}
	if s.opts.SnapshotEvery > 0 && s.appends >= s.opts.SnapshotEvery && s.stateSource != nil {
		if err := s.checkpointLocked(s.stateSource()); err != nil {
			return err
		}
	}
	return nil
}

// fenceCheckLocked rejects the write with ErrFenced when the shared
// term source reports a term newer than this store's own — a follower
// was promoted and this store is a deposed primary.
func (s *Store) fenceCheckLocked() error {
	if s.termSource == nil {
		return nil
	}
	if cur := s.termSource(); cur > s.term {
		if s.opts.Counters != nil {
			s.opts.Counters.AddFencedWrite()
		}
		return fmt.Errorf("%w (own term %d, current %d)", ErrFenced, s.term, cur)
	}
	return nil
}

// executeCrashLocked applies a scripted kill: a torn prefix of the frame,
// optional trailing garbage, an optional bit flip, then death.
func (s *Store) executeCrashLocked(cp CrashPoint, frame []byte) {
	tear := cp.TearBytes
	if tear > len(frame) {
		tear = len(frame)
	}
	if tear > 0 {
		s.wal.Write(frame[:tear])
	}
	if len(cp.Garbage) > 0 {
		s.wal.Write(cp.Garbage)
	}
	s.wal.Sync()
	if cp.FlipBit >= 0 {
		flipBitFromEnd(s.wal.Name(), cp.FlipBit)
	}
	s.crashed = true
	s.wal.Close()
}

// Checkpoint writes a full snapshot of the current state (from the
// installed state source) and rotates the WAL. Use at clean shutdown and
// for explicit durability points.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	if s.stateSource == nil {
		return errors.New("store: no state source installed")
	}
	return s.checkpointLocked(s.stateSource())
}

// checkpointLocked writes snap-(gen+1) via temp-file + atomic rename,
// switches appends to wal-(gen+1), then deletes the old generation. A
// crash anywhere in between recovers correctly: until the rename lands,
// the old snapshot + old WAL (still intact) are authoritative; after it,
// the new snapshot is, with or without its WAL file.
func (s *Store) checkpointLocked(state *State) error {
	next := s.gen + 1
	tmp := snapPath(s.dir, next) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		s.crashed = true
		return fmt.Errorf("%w: %v", ErrCrashed, err)
	}
	if err := writeSnapshot(f, state); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(tmp)
		s.crashed = true
		return fmt.Errorf("%w: %v", ErrCrashed, err)
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		s.crashed = true
		return fmt.Errorf("%w: %v", ErrCrashed, err)
	}
	if err := f.Close(); err != nil {
		s.crashed = true
		return fmt.Errorf("%w: %v", ErrCrashed, err)
	}
	if err := os.Rename(tmp, snapPath(s.dir, next)); err != nil {
		s.crashed = true
		return fmt.Errorf("%w: %v", ErrCrashed, err)
	}
	syncDir(s.dir)

	wal, err := os.OpenFile(walPath(s.dir, next), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		s.crashed = true
		return fmt.Errorf("%w: %v", ErrCrashed, err)
	}
	s.wal.Close()
	os.Remove(walPath(s.dir, s.gen))
	os.Remove(snapPath(s.dir, s.gen))
	syncDir(s.dir)
	s.wal = wal
	s.gen = next
	s.appends = 0
	if s.opts.Counters != nil {
		s.opts.Counters.AddSnapshot()
	}
	if s.replSink != nil {
		// Followers rotate to the new generation through a snapshot frame;
		// a follower that misses it detects the gap and resyncs.
		s.replSink(ReplFrame{Type: ReplSnapshot, Term: s.term, Gen: s.gen, Pos: s.pos, Payload: EncodeState(state)})
	}
	return nil
}

// Kill simulates abrupt process death for the crash harness: the WAL
// file descriptor is closed as-is — no checkpoint, no flush beyond what
// individual appends already wrote — and every later operation fails.
func (s *Store) Kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return
	}
	s.crashed = true
	s.wal.Close()
}

// Close checkpoints nothing (call Checkpoint first for a clean-shutdown
// snapshot) but syncs and closes the WAL.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil
	}
	s.crashed = true
	if s.opts.Fsync {
		s.wal.Sync()
	}
	return s.wal.Close()
}

// WALPath returns the active WAL file path (for the crash harness's
// tail-mangling injectors).
func (s *Store) WALPath() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return walPath(s.dir, s.gen)
}

// Gen returns the current generation number.
func (s *Store) Gen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Pos returns the lifetime record position: how many records this store
// has ever appended (plus those replayed at Open). The replication
// stream stamps every record frame with it.
func (s *Store) Pos() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pos
}

// Crashed reports whether the store is dead (killed, crash point, or
// write failure).
func (s *Store) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// SetTerm installs this store's own fencing term (the term it was
// promoted or booted under).
func (s *Store) SetTerm(t uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.term = t
}

// Term returns this store's own fencing term.
func (s *Store) Term() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.term
}

// SetTermSource installs the shared current-term reader. Once the
// source reports a term newer than this store's own, every Append is
// rejected with ErrFenced — the deposed-primary fence. The source is
// called with s.mu held and must not call back into the store.
func (s *Store) SetTermSource(f func() uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.termSource = f
}

// SetReplSink installs the replication stream hook: one ReplRecord
// frame per appended record, one ReplSnapshot frame per checkpoint. The
// sink runs with s.mu held — before the append's caller can release its
// response — so every acknowledged write is in the stream. It must not
// call back into the store.
func (s *Store) SetReplSink(f func(ReplFrame)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replSink = f
}

// Bootstrap captures the current full state as a ReplSnapshot frame and
// hands it to fn while holding the store lock: no record can be
// appended between the capture and fn's return, so a follower installed
// inside fn (and subscribed through the repl sink) misses nothing. The
// state source must be installed first.
func (s *Store) Bootstrap(fn func(ReplFrame) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	if s.stateSource == nil {
		return errors.New("store: no state source installed")
	}
	return fn(ReplFrame{
		Type: ReplSnapshot, Term: s.term, Gen: s.gen, Pos: s.pos,
		Payload: EncodeState(s.stateSource()),
	})
}

// syncDir fsyncs a directory so renames and creates survive a power cut.
// Errors are ignored: some filesystems refuse directory fsync, and the
// fallback behaviour (rely on the next sync) is still correct for the
// process-crash model the tests exercise.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
