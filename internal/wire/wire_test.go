package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/pyramid"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	buf := Encode(m)
	if got := EncodedSize(m); got != len(buf) {
		t.Errorf("%v: EncodedSize = %d, actual %d", m.Kind(), got, len(buf))
	}
	out, err := Decode(buf)
	if err != nil {
		t.Fatalf("%v: Decode: %v", m.Kind(), err)
	}
	return out
}

func TestRoundTripAllKinds(t *testing.T) {
	msgs := []Message{
		Register{User: 42, Strategy: StrategyPBSR, MaxHeight: 5},
		PositionUpdate{User: 7, Seq: 1234, Pos: geom.Pt(123.456, -9.75)},
		RectRegion{Seq: 9, Rect: geom.R(1, 2, 3, 4), Cap: 41},
		BitmapRegion{Seq: 3, Cell: geom.R(0, 0, 900, 900), U: 3, V: 3, Height: 4,
			NBits: 19, Cap: 7, Data: []byte{0xAB, 0xCD, 0xE0}},
		AlarmPush{Seq: 5, Cell: geom.R(0, 0, 100, 100), Cap: 3, Alarms: []AlarmInfo{
			{ID: 1, Region: geom.R(1, 1, 2, 2)},
			{ID: 99, Region: geom.R(50, 50, 60, 60)},
		}},
		SafePeriod{Seq: 8, Ticks: 300},
		AlarmFired{Seq: 2, Alarms: []uint64{5, 6, 7}},
		Ack{Seq: 11, Cap: 9},
		Hello{User: 42, Token: 0xDEADBEEF01, Strategy: StrategyMWPSR, MaxHeight: 3},
		Resume{Token: 0xDEADBEEF01, Resumed: true},
		Resume{Token: 7},
		Heartbeat{Nonce: 0xCAFE},
		FiredAck{Alarms: []uint64{9, 10}},
		Redirect{Token: 0xBEEF02, Epoch: 9, Addr: "10.0.0.7:7701"},
		Redirect{Token: 3},
		UpdateBatch{Updates: []PositionUpdate{
			{User: 1, Seq: 2, Pos: geom.Pt(3, 4)},
			{User: 9, Seq: 8, Pos: geom.Pt(-7, 6.5)},
		}},
		BatchReply{Entries: []BatchEntry{
			{User: 1, Msgs: []Message{
				AlarmFired{Seq: 2, Alarms: []uint64{5}},
				RectRegion{Seq: 2, Rect: geom.R(1, 2, 3, 4)},
			}},
			{User: 9, Msgs: []Message{Ack{Seq: 8}}},
		}},
		InstallContinuous{Owner: 4, Subscribers: []uint64{5, 6}, Region: geom.R(10, 10, 40, 40), Cooldown: 12},
		InstallContinuous{Owner: 4, Region: geom.R(0, 0, 5, 5)},
		InstallPair{Owner: 3, Anchor: 8, Radius: 150.5, Cooldown: 4},
		InstallComposite{Owner: 2, Subscribers: []uint64{7}, Factors: []FactorInfo{
			{Center: geom.Pt(100, 100), Radius: 30, Weight: 0.6},
			{Region: geom.R(50, 50, 90, 90), Weight: 0.5},
		}, Threshold: 1.0, ExpiresAt: 400},
		InstallReply{ID: 17},
	}
	for _, m := range msgs {
		t.Run(m.Kind().String(), func(t *testing.T) {
			got := roundTrip(t, m)
			if !reflect.DeepEqual(got, m) {
				t.Errorf("round trip mismatch:\n got  %#v\n want %#v", got, m)
			}
		})
	}
}

func TestEmptyCollections(t *testing.T) {
	gotPush := roundTrip(t, AlarmPush{Seq: 1, Cell: geom.R(0, 0, 1, 1)}).(AlarmPush)
	if len(gotPush.Alarms) != 0 {
		t.Errorf("alarms = %v", gotPush.Alarms)
	}
	gotFired := roundTrip(t, AlarmFired{Seq: 1}).(AlarmFired)
	if len(gotFired.Alarms) != 0 {
		t.Errorf("alarms = %v", gotFired.Alarms)
	}
	gotBatch := roundTrip(t, UpdateBatch{}).(UpdateBatch)
	if len(gotBatch.Updates) != 0 {
		t.Errorf("updates = %v", gotBatch.Updates)
	}
	gotReply := roundTrip(t, BatchReply{}).(BatchReply)
	if len(gotReply.Entries) != 0 {
		t.Errorf("entries = %v", gotReply.Entries)
	}
	gotEntry := roundTrip(t, BatchReply{Entries: []BatchEntry{{User: 3}}}).(BatchReply)
	if len(gotEntry.Entries) != 1 || len(gotEntry.Entries[0].Msgs) != 0 {
		t.Errorf("entries = %v", gotEntry.Entries)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil buf: %v", err)
	}
	if _, err := Decode([]byte{0xFF, 1, 2}); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("unknown kind: %v", err)
	}
	// Truncate every valid message at every byte boundary: must error, not
	// panic.
	msgs := []Message{
		Register{User: 1, Strategy: StrategyMWPSR, MaxHeight: 2},
		PositionUpdate{User: 1, Seq: 2, Pos: geom.Pt(3, 4)},
		RectRegion{Seq: 1, Rect: geom.R(0, 0, 5, 5)},
		AlarmPush{Seq: 1, Cell: geom.R(0, 0, 1, 1), Alarms: []AlarmInfo{{ID: 9, Region: geom.R(0, 0, 1, 1)}}},
		SafePeriod{Seq: 1, Ticks: 2},
		AlarmFired{Seq: 1, Alarms: []uint64{1, 2}},
		Hello{User: 1, Token: 2, Strategy: StrategyPBSR, MaxHeight: 4},
		Resume{Token: 3, Resumed: true},
		Heartbeat{Nonce: 4},
		FiredAck{Alarms: []uint64{5, 6}},
		Redirect{Token: 7, Addr: "127.0.0.1:9000"},
		UpdateBatch{Updates: []PositionUpdate{{User: 1, Seq: 2, Pos: geom.Pt(3, 4)}}},
		BatchReply{Entries: []BatchEntry{
			{User: 1, Msgs: []Message{AlarmFired{Seq: 2, Alarms: []uint64{5}}, Ack{Seq: 2}}},
		}},
		InstallContinuous{Owner: 4, Subscribers: []uint64{5}, Region: geom.R(10, 10, 40, 40), Cooldown: 2},
		InstallPair{Owner: 3, Anchor: 8, Radius: 150.5, Cooldown: 4},
		InstallComposite{Owner: 2, Subscribers: []uint64{7}, Factors: []FactorInfo{
			{Center: geom.Pt(100, 100), Radius: 30, Weight: 0.6},
		}, Threshold: 1.0, ExpiresAt: 400},
		InstallReply{ID: 17},
	}
	for _, m := range msgs {
		full := Encode(m)
		for cut := 1; cut < len(full); cut++ {
			if _, err := Decode(full[:cut]); err == nil {
				t.Errorf("%v truncated at %d decoded successfully", m.Kind(), cut)
			}
		}
	}
}

func TestHostileLengthPrefix(t *testing.T) {
	// A crafted AlarmPush claiming 2^31 alarms must be rejected without
	// allocating.
	m := AlarmPush{Seq: 1, Cell: geom.R(0, 0, 1, 1)}
	buf := Encode(m)
	// Overwrite the count field (after kind+seq+cell+cap = 1+4+32+4 bytes).
	buf[41], buf[42], buf[43], buf[44] = 0x7F, 0xFF, 0xFF, 0xFF
	if _, err := Decode(buf); err == nil {
		t.Error("hostile alarm count accepted")
	}
	f := AlarmFired{Seq: 1}
	fbuf := Encode(f)
	fbuf[5], fbuf[6], fbuf[7], fbuf[8] = 0x7F, 0xFF, 0xFF, 0xFF
	if _, err := Decode(fbuf); err == nil {
		t.Error("hostile fired count accepted")
	}
	abuf := Encode(FiredAck{})
	abuf[1], abuf[2], abuf[3], abuf[4] = 0x7F, 0xFF, 0xFF, 0xFF
	if _, err := Decode(abuf); err == nil {
		t.Error("hostile fired-ack count accepted")
	}
	// Redirect claiming more addr bytes than the frame holds. The u16
	// length sits after kind+token+epoch = 1+8+8 bytes.
	rbuf := Encode(Redirect{Token: 1, Epoch: 2, Addr: "x"})
	rbuf[17], rbuf[18] = 0xFF, 0xFF
	if _, err := Decode(rbuf); err == nil {
		t.Error("hostile redirect addr length accepted")
	}
	// Batch frames claiming more updates / entries / inner bytes than the
	// frame holds.
	ubuf := Encode(UpdateBatch{Updates: []PositionUpdate{{User: 1, Seq: 2}}})
	ubuf[1], ubuf[2], ubuf[3], ubuf[4] = 0x7F, 0xFF, 0xFF, 0xFF
	if _, err := Decode(ubuf); err == nil {
		t.Error("hostile update-batch count accepted")
	}
	bbuf := Encode(BatchReply{Entries: []BatchEntry{{User: 1, Msgs: []Message{Ack{Seq: 2}}}}})
	hostile := append([]byte(nil), bbuf...)
	hostile[1], hostile[2], hostile[3], hostile[4] = 0x7F, 0xFF, 0xFF, 0xFF
	if _, err := Decode(hostile); err == nil {
		t.Error("hostile batch-reply entry count accepted")
	}
	// Inner frame length field (kind + count + user + nmsgs = 17 bytes in).
	hostile = append(hostile[:0], bbuf...)
	hostile[17], hostile[18], hostile[19], hostile[20] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := Decode(hostile); err == nil {
		t.Error("hostile batch-reply inner length accepted")
	}
	// Zero-length inner frame.
	hostile = append(hostile[:0], bbuf...)
	hostile[17], hostile[18], hostile[19], hostile[20] = 0, 0, 0, 0
	if _, err := Decode(hostile); err == nil {
		t.Error("zero-length batch-reply inner frame accepted")
	}
}

// Batch frames must not nest: a BatchReply whose inner frame is itself a
// batch kind is rejected before the decoder recurses.
func TestNestedBatchRejected(t *testing.T) {
	for _, inner := range []Message{UpdateBatch{}, BatchReply{}} {
		innerBuf := Encode(inner)
		buf := []byte{byte(KindBatchReply), 0, 0, 0, 1} // one entry
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 9)       // user
		buf = append(buf, 0, 0, 0, 1)                   // one inner msg
		buf = append(buf, 0, 0, 0, byte(len(innerBuf))) // inner length
		buf = append(buf, innerBuf...)
		if _, err := Decode(buf); err == nil {
			t.Errorf("nested %v inside batch reply accepted", inner.Kind())
		}
	}
}

func TestSeqOf(t *testing.T) {
	withSeq := []Message{
		PositionUpdate{Seq: 5}, RectRegion{Seq: 5}, BitmapRegion{Seq: 5},
		AlarmPush{Seq: 5}, SafePeriod{Seq: 5}, AlarmFired{Seq: 5}, Ack{Seq: 5},
	}
	for _, m := range withSeq {
		if seq, ok := SeqOf(m); !ok || seq != 5 {
			t.Errorf("SeqOf(%v) = %d, %v", m.Kind(), seq, ok)
		}
	}
	without := []Message{Register{}, Hello{}, Resume{}, Heartbeat{}, FiredAck{}, Redirect{}, UpdateBatch{}, BatchReply{}}
	for _, m := range without {
		if _, ok := SeqOf(m); ok {
			t.Errorf("SeqOf(%v) unexpectedly present", m.Kind())
		}
	}
}

func TestBitmapRegionPyramidRoundTrip(t *testing.T) {
	cell := geom.R(0, 0, 900, 900)
	alarm := geom.R(100, 100, 200, 200)
	bm, err := pyramid.Encode(cell, pyramid.DefaultParams(3), func(r geom.Rect) pyramid.Coverage {
		return pyramid.CoverageOf(r, []geom.Rect{alarm})
	})
	if err != nil {
		t.Fatal(err)
	}
	msg := FromBitmap(77, bm)
	got := roundTrip(t, msg).(BitmapRegion)
	back := got.Bitmap()
	if back.String() != bm.String() {
		t.Errorf("bitmap bits changed: %s vs %s", back.String(), bm.String())
	}
	if _, err := pyramid.Decode(back); err != nil {
		t.Errorf("decoded bitmap unusable: %v", err)
	}
	if got.Seq != 77 {
		t.Errorf("seq = %d", got.Seq)
	}
}

func TestKindAndStrategyStrings(t *testing.T) {
	for k := KindRegister; k <= KindBatchReply; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "Kind(200)" {
		t.Error("unknown kind string")
	}
	for s := StrategyPeriodic; s <= StrategyOptimal; s++ {
		if s.String() == "" || strings.HasPrefix(s.String(), "Strategy(") {
			t.Errorf("strategy %d has no name", s)
		}
	}
	if Strategy(200).String() != "Strategy(200)" {
		t.Error("unknown strategy string")
	}
}

func TestDecodeFuzzRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		n := rng.Intn(128)
		buf := make([]byte, n)
		rng.Read(buf)
		// Must never panic; errors are fine.
		_, _ = Decode(buf)
	}
}

func BenchmarkEncodePositionUpdate(b *testing.B) {
	m := PositionUpdate{User: 7, Seq: 1, Pos: geom.Pt(123.4, 567.8)}
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		Encode(m)
	}
}

func BenchmarkDecodePositionUpdate(b *testing.B) {
	buf := Encode(PositionUpdate{User: 7, Seq: 1, Pos: geom.Pt(123.4, 567.8)})
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeUpdateBatch(b *testing.B) {
	ups := make([]PositionUpdate, 32)
	for i := range ups {
		ups[i] = PositionUpdate{User: uint64(i), Seq: uint32(i), Pos: geom.Pt(float64(i), float64(-i))}
	}
	m := UpdateBatch{Updates: ups}
	var buf []byte
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		buf = AppendEncode(buf[:0], m)
	}
}

func BenchmarkDecodeUpdateBatch(b *testing.B) {
	ups := make([]PositionUpdate, 32)
	for i := range ups {
		ups[i] = PositionUpdate{User: uint64(i), Seq: uint32(i), Pos: geom.Pt(float64(i), float64(-i))}
	}
	buf := Encode(UpdateBatch{Updates: ups})
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// hotPathMessages are the frames exchanged on every tick of a steady-state
// session; their codec cost is the per-update floor of the whole system.
func hotPathMessages() []Message {
	return []Message{
		PositionUpdate{User: 7, Seq: 1, Pos: geom.Pt(123.4, 567.8)},
		RectRegion{Seq: 9, Rect: geom.R(1, 2, 3, 4), Cap: 41},
		SafePeriod{Seq: 8, Ticks: 300},
		Ack{Seq: 11, Cap: 9},
		AlarmFired{Seq: 2, Alarms: []uint64{5, 6, 7}},
		Heartbeat{Nonce: 0xCAFE},
		UpdateBatch{Updates: []PositionUpdate{
			{User: 1, Seq: 2, Pos: geom.Pt(3, 4)},
			{User: 1, Seq: 3, Pos: geom.Pt(4, 5)},
		}},
		BatchReply{Entries: []BatchEntry{
			{User: 1, Msgs: []Message{RectRegion{Seq: 3, Rect: geom.R(1, 2, 3, 4)}}},
		}},
	}
}

// Regression guard (satellite of the batching issue): encoding any hot-path
// message into a reused buffer must not allocate, so pooled encode buffers
// make the transport write path allocation-free.
func TestAppendEncodeZeroAlloc(t *testing.T) {
	for _, m := range hotPathMessages() {
		m := m
		buf := AppendEncode(nil, m) // warm the buffer to its final capacity
		if got := testing.AllocsPerRun(100, func() {
			buf = AppendEncode(buf[:0], m)
		}); got != 0 {
			t.Errorf("AppendEncode(%v) allocates %.1f/op, want 0", m.Kind(), got)
		}
	}
}

// Regression guard: decoding a hot-path message stays within a fixed
// allocation budget (the interface box plus one slice per variable-length
// field). Creep here silently taxes every update the server handles.
func TestDecodeAllocBudget(t *testing.T) {
	budgets := []struct {
		m      Message
		budget float64
	}{
		{PositionUpdate{User: 7, Seq: 1, Pos: geom.Pt(123.4, 567.8)}, 1},
		{RectRegion{Seq: 9, Rect: geom.R(1, 2, 3, 4), Cap: 41}, 1},
		{SafePeriod{Seq: 8, Ticks: 300}, 1},
		{Ack{Seq: 11, Cap: 9}, 1},
		{Heartbeat{Nonce: 0xCAFE}, 1},
		{AlarmFired{Seq: 2, Alarms: []uint64{5, 6, 7}}, 2},
		{UpdateBatch{Updates: []PositionUpdate{{User: 1, Seq: 2, Pos: geom.Pt(3, 4)}}}, 2},
	}
	for _, tc := range budgets {
		tc := tc
		buf := Encode(tc.m)
		if got := testing.AllocsPerRun(100, func() {
			if _, err := Decode(buf); err != nil {
				t.Fatal(err)
			}
		}); got > tc.budget {
			t.Errorf("Decode(%v) allocates %.1f/op, budget %.0f", tc.m.Kind(), got, tc.budget)
		}
	}
}

// Property: position updates and rect regions round-trip for arbitrary
// finite values.
func TestQuickRoundTripProperties(t *testing.T) {
	posF := func(user uint64, seq uint32, x, y float64) bool {
		if x != x || y != y { // skip NaN: NaN != NaN breaks equality checks
			return true
		}
		m := PositionUpdate{User: user, Seq: seq, Pos: geom.Pt(x, y)}
		got, err := Decode(Encode(m))
		return err == nil && got == m
	}
	if err := quick.Check(posF, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	rectF := func(seq uint32, a, b, c, d float64) bool {
		if a != a || b != b || c != c || d != d {
			return true
		}
		m := RectRegion{Seq: seq, Rect: geom.Rect{MinX: a, MinY: b, MaxX: c, MaxY: d}}
		got, err := Decode(Encode(m))
		return err == nil && got == m
	}
	if err := quick.Check(rectF, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
