package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Replication stream framing. The WAL is the replication substrate: a
// primary streams every appended record (and, on checkpoint, the new
// snapshot generation) to its followers as self-validating frames. The
// frame layout extends the WAL's length-prefix + CRC idiom with the
// three coordinates a follower needs to apply the stream safely:
//
//	u8  type  | ReplRecord, ReplSnapshot or ReplHeartbeat
//	u64 term  | the primary's fencing term; a follower rejects frames
//	          | from a term older than the highest it has seen, so a
//	          | deposed primary cannot rewrite a promoted log
//	u64 gen   | the primary's snapshot/WAL generation
//	u64 pos   | the primary's lifetime record position (records only
//	          | advance it; snapshot frames carry the position their
//	          | state includes)
//	u32 len   | payload length
//	u32 crc   | CRC-32 (IEEE) of the payload
//	payload   | EncodeRecord bytes (ReplRecord), EncodeState bytes
//	          | (ReplSnapshot), empty (ReplHeartbeat)
//
// Anything DecodeReplFrame accepts re-encodes byte-identically, which
// FuzzReplicationStreamDecode hammers on; a short buffer is
// distinguished from a corrupt one so a streaming reader can wait for
// more bytes instead of resynchronizing.
const (
	// ReplRecord carries one WAL record at position pos.
	ReplRecord = 1
	// ReplSnapshot carries a full EncodeState payload: the follower
	// replaces its log with this generation and resumes from pos.
	ReplSnapshot = 2
	// ReplHeartbeat carries no payload; it advertises the primary's
	// term and position so followers track liveness and lag.
	ReplHeartbeat = 3

	// replHeader is the fixed frame prefix: type, term, gen, pos, len, crc.
	replHeader = 1 + 8 + 8 + 8 + 4 + 4

	// maxReplRecordPayload bounds a record frame's payload, matching the
	// WAL's own frame cap.
	maxReplRecordPayload = maxFramePayload
	// maxReplSnapshotPayload bounds a snapshot frame's payload; full
	// states are much larger than single records.
	maxReplSnapshotPayload = 1 << 26
)

// ErrShortReplFrame reports a buffer that ends before the frame does —
// not corruption, just an incomplete read.
var ErrShortReplFrame = errors.New("store: short replication frame")

// ErrBadReplFrame marks a replication frame the decoder rejects: unknown
// type, oversized claim, or CRC mismatch.
var ErrBadReplFrame = errors.New("store: bad replication frame")

// ReplFrame is one decoded replication stream frame.
type ReplFrame struct {
	Type    uint8
	Term    uint64
	Gen     uint64
	Pos     uint64
	Payload []byte
}

// replPayloadCap returns the payload bound for a frame type, or false
// for an unknown type.
func replPayloadCap(typ uint8) (int, bool) {
	switch typ {
	case ReplRecord:
		return maxReplRecordPayload, true
	case ReplSnapshot:
		return maxReplSnapshotPayload, true
	case ReplHeartbeat:
		return 0, true
	default:
		return 0, false
	}
}

// AppendReplFrame appends f's encoding to dst and returns the extended
// slice.
func AppendReplFrame(dst []byte, f ReplFrame) []byte {
	dst = append(dst, f.Type)
	dst = binary.BigEndian.AppendUint64(dst, f.Term)
	dst = binary.BigEndian.AppendUint64(dst, f.Gen)
	dst = binary.BigEndian.AppendUint64(dst, f.Pos)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(f.Payload))
	return append(dst, f.Payload...)
}

// EncodeReplFrame returns f's encoding.
func EncodeReplFrame(f ReplFrame) []byte {
	return AppendReplFrame(make([]byte, 0, replHeader+len(f.Payload)), f)
}

// DecodeReplFrame parses the frame at the start of buf, returning the
// frame and the bytes it consumed. ErrShortReplFrame means buf ends
// mid-frame (wait for more bytes); ErrBadReplFrame means the bytes are
// not a valid frame (unknown type, absurd length, CRC failure) and must
// not be applied. The returned payload aliases buf.
func DecodeReplFrame(buf []byte) (ReplFrame, int, error) {
	if len(buf) < replHeader {
		return ReplFrame{}, 0, fmt.Errorf("%w: %d of %d header bytes", ErrShortReplFrame, len(buf), replHeader)
	}
	f := ReplFrame{
		Type: buf[0],
		Term: binary.BigEndian.Uint64(buf[1:]),
		Gen:  binary.BigEndian.Uint64(buf[9:]),
		Pos:  binary.BigEndian.Uint64(buf[17:]),
	}
	n := binary.BigEndian.Uint32(buf[25:])
	sum := binary.BigEndian.Uint32(buf[29:])
	limit, ok := replPayloadCap(f.Type)
	if !ok {
		return ReplFrame{}, 0, fmt.Errorf("%w: unknown type %d", ErrBadReplFrame, f.Type)
	}
	if int64(n) > int64(limit) {
		return ReplFrame{}, 0, fmt.Errorf("%w: type %d claims %d payload bytes (cap %d)", ErrBadReplFrame, f.Type, n, limit)
	}
	if uint64(len(buf)-replHeader) < uint64(n) {
		return ReplFrame{}, 0, fmt.Errorf("%w: payload claims %d bytes, %d remain", ErrShortReplFrame, n, len(buf)-replHeader)
	}
	f.Payload = buf[replHeader : replHeader+int(n)]
	if crc32.ChecksumIEEE(f.Payload) != sum {
		return ReplFrame{}, 0, fmt.Errorf("%w: payload fails CRC", ErrBadReplFrame)
	}
	if len(f.Payload) == 0 {
		f.Payload = nil
	}
	return f, replHeader + int(n), nil
}
