package alarm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
)

func buildPopulated(t *testing.T) (*Registry, []ID) {
	t.Helper()
	r := NewRegistry()
	ids := make([]ID, 0, 6)
	add := func(a Alarm) {
		id, err := r.Install(a)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	add(Alarm{Scope: Private, Owner: 1, Region: region(100, 100, 20)})
	add(Alarm{Scope: Private, Owner: 2, Region: region(300, 100, 20)})
	add(Alarm{Scope: Shared, Owner: 1, Subscribers: []UserID{2, 3}, Region: region(500, 500, 40)})
	add(Alarm{Scope: Public, Owner: 4, Region: region(700, 700, 60)})
	add(Alarm{Scope: Shared, Owner: 5, Subscribers: []UserID{6}, Region: region(900, 900, 30), Target: 7})
	r.MarkFired(ids[0], 1)
	r.MarkFired(ids[3], 2)
	r.MarkFired(ids[3], 9)
	return r, ids
}

func TestSnapshotRoundTrip(t *testing.T) {
	r, ids := buildPopulated(t)
	var buf bytes.Buffer
	if err := r.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadRegistry(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != r.Len() {
		t.Fatalf("Len = %d, want %d", restored.Len(), r.Len())
	}
	// Alarms identical, including subscribers and targets.
	for _, id := range ids {
		want, _ := r.Get(id)
		got, ok := restored.Get(id)
		if !ok {
			t.Fatalf("alarm %d missing after restore", id)
		}
		if got.Scope != want.Scope || got.Owner != want.Owner ||
			got.Region != want.Region || got.Target != want.Target ||
			len(got.Subscribers) != len(want.Subscribers) {
			t.Errorf("alarm %d differs: %+v vs %+v", id, got, want)
		}
	}
	// Fired state preserved: one-shot semantics resume.
	if restored.Evaluate(geom.Pt(100, 100), 1) != nil {
		t.Error("fired private alarm re-armed after restore")
	}
	if got := restored.Evaluate(geom.Pt(700, 700), 2); len(got) != 0 {
		t.Error("fired public pair re-armed after restore")
	}
	if got := restored.Evaluate(geom.Pt(700, 700), 5); len(got) != 1 {
		t.Errorf("unfired public pair lost: %v", got)
	}
	// Target index rebuilt.
	if !restored.IsTarget(7) {
		t.Error("target index lost")
	}
	// ID allocation continues without collisions.
	newID, err := restored.Install(Alarm{Scope: Private, Owner: 9, Region: region(50, 50, 10)})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if newID == id {
			t.Fatalf("restored registry reissued id %d", id)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	r, _ := buildPopulated(t)
	var a, b bytes.Buffer
	if err := r.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("snapshots of identical state differ")
	}
}

func TestLoadRegistryRejectsCorruptInput(t *testing.T) {
	cases := map[string]string{
		"garbage":        "not json",
		"wrong version":  `{"version": 99, "nextId": 1}`,
		"empty region":   `{"version": 1, "nextId": 2, "alarms": [{"id": 1, "scope": 1, "owner": 1, "region": [5,5,5,5]}]}`,
		"bad scope":      `{"version": 1, "nextId": 2, "alarms": [{"id": 1, "scope": 9, "owner": 1, "region": [0,0,5,5]}]}`,
		"duplicate id":   `{"version": 1, "nextId": 3, "alarms": [{"id": 1, "scope": 1, "owner": 1, "region": [0,0,5,5]}, {"id": 1, "scope": 1, "owner": 2, "region": [10,10,15,15]}]}`,
		"dangling fired": `{"version": 1, "nextId": 2, "alarms": [], "fired": [{"alarm": 5, "user": 1}]}`,
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadRegistry(strings.NewReader(input)); err == nil {
				t.Error("corrupt snapshot accepted")
			}
		})
	}
}

func TestSnapshotLargeRegistry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := NewRegistry()
	batch := make([]Alarm, 3000)
	for i := range batch {
		batch[i] = Alarm{
			Scope:  Public,
			Owner:  UserID(rng.Intn(100) + 1),
			Region: region(rng.Float64()*10000, rng.Float64()*10000, 50),
		}
	}
	ids, err := r.InstallBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		r.MarkFired(ids[rng.Intn(len(ids))], UserID(rng.Intn(100)+1))
	}
	var buf bytes.Buffer
	if err := r.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadRegistry(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Spatial queries agree between original and restored registries.
	for i := 0; i < 100; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		u := UserID(rng.Intn(100) + 1)
		a := r.Evaluate(p, u)
		b := restored.Evaluate(p, u)
		if len(a) != len(b) {
			t.Fatalf("query disagreement at %v: %d vs %d", p, len(a), len(b))
		}
	}
}
