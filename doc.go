// Package sabre is a from-scratch implementation of safe region-based
// distributed spatial alarm processing, reproducing
//
//	Bamba, Liu, Iyengar, Yu: "Distributed Processing of Spatial Alarms:
//	A Safe Region-based Approach", ICDCS 2009.
//
// A spatial alarm is a one-shot, location-triggered notification ("alert
// me when I am within two miles of the dry cleaner"). SABRE processes
// alarms with a distributed client/server split: the server computes a
// per-client safe region — an area in which no relevant alarm can possibly
// fire — and the client monitors its own position against that region,
// contacting the server only when it leaves it. Three safe region
// representations are implemented:
//
//   - MWPSR: maximum weighted perimeter rectangles built from dynamic
//     skyline candidate/tension points, optionally weighted by a
//     steady-motion probability model;
//   - GBSR: grid bitmap-encoded rectilinear regions; and
//   - PBSR: pyramid bitmap-encoded regions with per-client resolution,
//     supporting heterogeneous device capabilities.
//
// Two server-centric baselines from the paper are included for comparison:
// periodic evaluation (PRD) and safe-period processing (SP), plus the OPT
// upper bound that ships every nearby alarm to the client.
//
// # Quick start
//
//	svc, _ := sabre.NewService(sabre.ServiceConfig{
//		Universe:    sabre.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000},
//		CellAreaKM2: 2.5,
//	})
//	id, _ := svc.InstallAlarm(sabre.Alarm{
//		Scope:  sabre.Private,
//		Owner:  1,
//		Region: sabre.RectAround(sabre.Pt(5000, 5000), 200),
//	})
//	svc.RegisterClient(1, sabre.StrategyMWPSR, 0)
//	mon := sabre.NewMonitor(1, sabre.StrategyMWPSR)
//	// each tick: feed the monitor a position; forward any report to the
//	// service and its responses back to the monitor.
//	_ = id
//
// See examples/ for complete programs and cmd/alarmbench for the
// reproduction of every figure in the paper's evaluation.
package sabre
