package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/mobility"
	"github.com/sabre-geo/sabre/internal/motion"
	"github.com/sabre-geo/sabre/internal/pyramid"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/sim"
	"github.com/sabre-geo/sabre/internal/wire"
)

// benchEngineUpdates is how many HandleUpdate calls each goroutine issues
// per measured point; at roughly 50–100 µs per update the whole sweep
// stays under a minute at small scale.
const benchEngineUpdates = 10000

// benchEnginePoint is one measured (strategy, goroutines) cell of the
// engine throughput sweep.
type benchEnginePoint struct {
	Strategy     string  `json:"strategy"`
	Goroutines   int     `json:"goroutines"`
	Updates      uint64  `json:"updates"`
	Seconds      float64 `json:"seconds"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	NsPerUpdate  float64 `json:"ns_per_update"`
	SpeedupVsOne float64 `json:"speedup_vs_1"`
}

// benchWorkloadMix records the alarm-kind fractions of the generated
// workload so the report is self-describing: lifecycle alarms pay for
// state-machine evaluation and pair-cap computation on the same hot path
// the one-shot numbers measure.
type benchWorkloadMix struct {
	OneShot    float64 `json:"one_shot"`
	Continuous float64 `json:"continuous"`
	Pair       float64 `json:"pair"`
	Composite  float64 `json:"composite"`
}

type benchEngineReport struct {
	Scale      string `json:"scale"`
	Vehicles   int    `json:"vehicles"`
	Alarms     int    `json:"alarms"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Fsync and WALGroupMax record the durability regime the bench ran
	// under. This bench drives a memory-only engine: no WAL, so fsync is
	// false and the group-commit cap is 0 (not applicable). bench-wal
	// measures the fsync-on regime.
	Fsync       bool               `json:"fsync"`
	WALGroupMax int                `json:"wal_group_max"`
	WorkloadMix benchWorkloadMix   `json:"workload_mix"`
	Series      []benchEnginePoint `json:"series"`
}

// runBenchEngine measures raw Engine.HandleUpdate throughput at 1, 2, 4
// and 8 client goroutines (disjoint client fleets replaying pre-generated
// mobility traces) and writes the series to BENCH_engine.json. Note the
// observable speedup is bounded by GOMAXPROCS: on a single-core host all
// points collapse to serial throughput, which the JSON records so readers
// can judge the numbers.
func runBenchEngine(opts options) error {
	cfg, err := workload(opts, -1)
	if err != nil {
		return err
	}
	// Mixed-lifecycle workload: 70% one-shot / 15% continuous / 10% pair /
	// 5% composite, so the sweep prices lifecycle evaluation in.
	cfg.Lifecycle = sim.LifecycleMix{Continuous: 0.15, Pair: 0.10, Composite: 0.05}
	w, err := sim.BuildWorkload(cfg)
	if err != nil {
		return err
	}
	const traceTicks = 256
	report := benchEngineReport{
		Scale:      opts.scale,
		Vehicles:   cfg.Vehicles,
		Alarms:     len(w.Alarms),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		WorkloadMix: benchWorkloadMix{
			OneShot:    1 - cfg.Lifecycle.Continuous - cfg.Lifecycle.Pair - cfg.Lifecycle.Composite,
			Continuous: cfg.Lifecycle.Continuous,
			Pair:       cfg.Lifecycle.Pair,
			Composite:  cfg.Lifecycle.Composite,
		},
	}
	header := []string{"strategy", "goroutines", "ops/sec", "ns/update", "speedup vs 1"}
	var rows [][]string
	for _, strategy := range []wire.Strategy{wire.StrategyMWPSR, wire.StrategyPBSR} {
		var baseline float64
		for _, procs := range []int{1, 2, 4, 8} {
			pt, err := benchEngineOnce(w, strategy, procs, traceTicks)
			if err != nil {
				return err
			}
			if procs == 1 {
				baseline = pt.OpsPerSec
			}
			if baseline > 0 {
				pt.SpeedupVsOne = pt.OpsPerSec / baseline
			}
			report.Series = append(report.Series, pt)
			rows = append(rows, []string{pt.Strategy, fmtCount(uint64(procs)),
				fmt.Sprintf("%.0f", pt.OpsPerSec),
				fmt.Sprintf("%.0f", pt.NsPerUpdate),
				fmt.Sprintf("%.2fx", pt.SpeedupVsOne)})
		}
	}
	table(fmt.Sprintf("Engine update throughput (GOMAXPROCS=%d)", report.GOMAXPROCS), header, rows)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_engine.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  wrote BENCH_engine.json")
	return nil
}

// benchEngineOnce builds a fresh engine for one sweep point and hammers it
// from `procs` goroutines, each owning a disjoint slice of the fleet.
func benchEngineOnce(w *sim.Workload, strategy wire.Strategy, procs, traceTicks int) (benchEnginePoint, error) {
	mobCfg := mobility.DefaultConfig(w.Config.Vehicles, w.Config.Seed)
	mob, err := mobility.NewSimulator(w.Net, mobCfg)
	if err != nil {
		return benchEnginePoint{}, err
	}
	eng, err := server.New(server.Config{
		Universe:      w.Net.Bounds().Expand(50),
		CellAreaM2:    2.5e6,
		Model:         motion.MustNew(1, 32),
		PyramidParams: pyramid.DefaultParams(5),
		MaxSpeed:      mob.MaxSpeed(),
		TickSeconds:   mobCfg.TickSeconds,
		Costs:         metrics.DefaultCosts(),
	})
	if err != nil {
		return benchEnginePoint{}, err
	}
	if _, err := eng.Registry().InstallBatch(w.Alarms); err != nil {
		return benchEnginePoint{}, err
	}
	traces := make([][]geom.Point, w.Config.Vehicles)
	for i := range traces {
		traces[i] = make([]geom.Point, traceTicks)
	}
	for t := 0; t < traceTicks; t++ {
		mob.Step()
		for i := range traces {
			traces[i][t] = mob.Position(i)
		}
	}
	for i := 0; i < w.Config.Vehicles; i++ {
		if err := eng.Register(wire.Register{
			User: uint64(i + 1), Strategy: strategy, MaxHeight: 5,
		}); err != nil {
			return benchEnginePoint{}, err
		}
	}

	var total atomic.Uint64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Disjoint fleet slice: worker p drives vehicles p, p+procs, …
			// so no two goroutines ever share a client mutex.
			seq := uint32(0)
			for n := 0; n < benchEngineUpdates; n++ {
				idx := (worker + n*procs) % len(traces)
				seq++
				upd := wire.PositionUpdate{
					User: uint64(idx + 1),
					Seq:  seq,
					Pos:  traces[idx][n%traceTicks],
				}
				if _, err := eng.HandleUpdate(upd); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				total.Add(1)
			}
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return benchEnginePoint{}, err
	}
	updates := total.Load()
	return benchEnginePoint{
		Strategy:    strategy.String(),
		Goroutines:  procs,
		Updates:     updates,
		Seconds:     elapsed.Seconds(),
		OpsPerSec:   float64(updates) / elapsed.Seconds(),
		NsPerUpdate: float64(elapsed.Nanoseconds()) / float64(updates),
	}, nil
}
