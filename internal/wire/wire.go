// Package wire defines the client–server message formats and their compact
// binary encoding.
//
// Every byte matters here: the paper's Figure 6(b) measures the downstream
// bandwidth spent broadcasting safe regions, and the relative sizes of the
// rectangular (fixed 32-byte), bitmap (variable, a few dozen bytes) and
// OPT (40 bytes per pushed alarm) payloads are exactly what produces its
// ordering of the approaches. The codec is hand-rolled big-endian with no
// framing — transports add their own length prefixes.
//
// Coordinates travel as float64 so a client and the server agree bit-for-
// bit on positions; this is what lets the simulation assert 100% trigger
// accuracy against the ground-truth trace.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/pyramid"
)

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds. Client→server: Register, PositionUpdate, Hello, Heartbeat,
// FiredAck. Server→client: Resume, Heartbeat (echo) and the rest.
const (
	KindRegister Kind = iota + 1
	KindPositionUpdate
	KindRectRegion
	KindBitmapRegion
	KindAlarmPush
	KindSafePeriod
	KindAlarmFired
	KindAck
	KindHello
	KindResume
	KindHeartbeat
	KindFiredAck
	KindRedirect
	KindUpdateBatch
	KindBatchReply
	KindInstallContinuous
	KindInstallPair
	KindInstallComposite
	KindInstallReply
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRegister:
		return "register"
	case KindPositionUpdate:
		return "position-update"
	case KindRectRegion:
		return "rect-region"
	case KindBitmapRegion:
		return "bitmap-region"
	case KindAlarmPush:
		return "alarm-push"
	case KindSafePeriod:
		return "safe-period"
	case KindAlarmFired:
		return "alarm-fired"
	case KindAck:
		return "ack"
	case KindHello:
		return "hello"
	case KindResume:
		return "resume"
	case KindHeartbeat:
		return "heartbeat"
	case KindFiredAck:
		return "fired-ack"
	case KindRedirect:
		return "redirect"
	case KindUpdateBatch:
		return "update-batch"
	case KindBatchReply:
		return "batch-reply"
	case KindInstallContinuous:
		return "install-continuous"
	case KindInstallPair:
		return "install-pair"
	case KindInstallComposite:
		return "install-composite"
	case KindInstallReply:
		return "install-reply"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Strategy identifies the alarm processing approach a client registers
// for. Values are stable wire constants.
type Strategy uint8

// Processing strategies (paper §5: PRD, SP, MWPSR, GBSR/PBSR, OPT).
const (
	StrategyPeriodic Strategy = iota + 1
	StrategySafePeriod
	StrategyMWPSR
	StrategyPBSR
	StrategyOptimal
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyPeriodic:
		return "PRD"
	case StrategySafePeriod:
		return "SP"
	case StrategyMWPSR:
		return "MWPSR"
	case StrategyPBSR:
		return "PBSR"
	case StrategyOptimal:
		return "OPT"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Message is any SABRE protocol message.
type Message interface {
	Kind() Kind
	// appendTo encodes the payload (without the kind byte).
	appendTo(dst []byte) []byte
}

// Codec errors.
var (
	ErrTruncated   = errors.New("wire: truncated message")
	ErrUnknownKind = errors.New("wire: unknown message kind")
)

// Register announces a client to the server, with its chosen strategy and
// capability (for PBSR, the maximum pyramid height the client can decode —
// the per-client heterogeneity knob of paper §4).
type Register struct {
	User      uint64
	Strategy  Strategy
	MaxHeight uint8
}

// Kind implements Message.
func (Register) Kind() Kind { return KindRegister }

func (m Register) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.User)
	return append(dst, byte(m.Strategy), m.MaxHeight)
}

// PositionUpdate is the client→server location report. Seq increments per
// client so responses can be matched to the update that prompted them.
type PositionUpdate struct {
	User uint64
	Seq  uint32
	Pos  geom.Point
}

// Kind implements Message.
func (PositionUpdate) Kind() Kind { return KindPositionUpdate }

func (m PositionUpdate) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.User)
	dst = binary.BigEndian.AppendUint32(dst, m.Seq)
	dst = appendFloat(dst, m.Pos.X)
	return appendFloat(dst, m.Pos.Y)
}

// RectRegion ships a rectangular safe region (MWPSR) to the client.
//
// Cap time-limits the region for pair-alarm endpoints: 0 means no cap,
// v > 0 means the proof expires v-1 ticks after receipt (a static region
// is never sound against a moving partner, so the cap must travel IN the
// region message — a separately shipped cap can be dropped independently,
// leaving the client provably safe forever on a region that is not).
type RectRegion struct {
	Seq  uint32
	Rect geom.Rect
	Cap  uint32
}

// Kind implements Message.
func (RectRegion) Kind() Kind { return KindRectRegion }

func (m RectRegion) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Seq)
	dst = appendRect(dst, m.Rect)
	return binary.BigEndian.AppendUint32(dst, m.Cap)
}

// BitmapRegion ships a bitmap-encoded safe region (GBSR/PBSR).
// Cap has RectRegion's pair-endpoint expiry semantics (0 = none).
type BitmapRegion struct {
	Seq    uint32
	Cell   geom.Rect
	U, V   uint8
	Height uint8
	NBits  uint32
	Cap    uint32
	Data   []byte
}

// Kind implements Message.
func (BitmapRegion) Kind() Kind { return KindBitmapRegion }

func (m BitmapRegion) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Seq)
	dst = appendRect(dst, m.Cell)
	dst = append(dst, m.U, m.V, m.Height)
	dst = binary.BigEndian.AppendUint32(dst, m.NBits)
	dst = binary.BigEndian.AppendUint32(dst, m.Cap)
	return append(dst, m.Data...)
}

// Bitmap converts the message into a pyramid.Bitmap for decoding.
func (m BitmapRegion) Bitmap() *pyramid.Bitmap {
	return &pyramid.Bitmap{
		Params: pyramid.Params{U: int(m.U), V: int(m.V), Height: int(m.Height)},
		Cell:   m.Cell,
		Data:   m.Data,
		NBits:  int(m.NBits),
	}
}

// FromBitmap builds the wire message for a pyramid bitmap.
func FromBitmap(seq uint32, b *pyramid.Bitmap) BitmapRegion {
	return BitmapRegion{
		Seq:    seq,
		Cell:   b.Cell,
		U:      uint8(b.Params.U),
		V:      uint8(b.Params.V),
		Height: uint8(b.Params.Height),
		NBits:  uint32(b.NBits),
		Data:   b.Data,
	}
}

// AlarmInfo is one alarm pushed to an OPT client.
type AlarmInfo struct {
	ID     uint64
	Region geom.Rect
}

// AlarmPush ships the client's grid cell and every relevant alarm
// intersecting it (the OPT approach of paper §4: the client gets complete
// knowledge of its vicinity). Cap has RectRegion's pair-endpoint expiry
// semantics (0 = none) — even full alarm knowledge cannot evaluate a pair
// locally, since the partner's position lives on the server.
type AlarmPush struct {
	Seq    uint32
	Cell   geom.Rect
	Cap    uint32
	Alarms []AlarmInfo
}

// Kind implements Message.
func (AlarmPush) Kind() Kind { return KindAlarmPush }

func (m AlarmPush) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Seq)
	dst = appendRect(dst, m.Cell)
	dst = binary.BigEndian.AppendUint32(dst, m.Cap)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Alarms)))
	for _, a := range m.Alarms {
		dst = binary.BigEndian.AppendUint64(dst, a.ID)
		dst = appendRect(dst, a.Region)
	}
	return dst
}

// SafePeriod ships a safe period in whole ticks (the SP baseline).
type SafePeriod struct {
	Seq   uint32
	Ticks uint32
}

// Kind implements Message.
func (SafePeriod) Kind() Kind { return KindSafePeriod }

func (m SafePeriod) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Seq)
	return binary.BigEndian.AppendUint32(dst, m.Ticks)
}

// AlarmFired notifies a client that alarms triggered for it.
type AlarmFired struct {
	Seq    uint32
	Alarms []uint64
}

// Kind implements Message.
func (AlarmFired) Kind() Kind { return KindAlarmFired }

func (m AlarmFired) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Seq)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Alarms)))
	for _, id := range m.Alarms {
		dst = binary.BigEndian.AppendUint64(dst, id)
	}
	return dst
}

// Ack tells a client its report was processed and its current monitoring
// state (safe region or alarm set) is unchanged. The PBSR strategy uses it
// when a client leaves its safe region but stays within its grid cell
// without triggering anything: the paper's §4.2 prescribes no safe region
// recomputation there, and the 5-byte Ack is what keeps PBSR's downstream
// bandwidth the lowest of all approaches (Figure 6(b)).
//
// Cap carries RectRegion's pair-endpoint expiry (0 = none): "state
// unchanged" still re-arms the time limit on a pair endpoint's region, and
// the limit must ride in the same message to survive lossy links.
type Ack struct {
	Seq uint32
	Cap uint32
}

// Kind implements Message.
func (Ack) Kind() Kind { return KindAck }

func (m Ack) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Seq)
	return binary.BigEndian.AppendUint32(dst, m.Cap)
}

// Hello opens (Token == 0) or resumes (Token != 0) a fault-tolerant
// session: unlike the bare Register, a Hello-established session survives
// the connection. A reconnecting client presents the token the server
// issued in its Resume reply; on a match the server keeps the client's
// registration, monitoring state and undelivered alarm firings instead of
// starting over. Tokens identify sessions across reconnects — they are
// not a security credential.
type Hello struct {
	User      uint64
	Token     uint64
	Strategy  Strategy
	MaxHeight uint8
}

// Kind implements Message.
func (Hello) Kind() Kind { return KindHello }

func (m Hello) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.User)
	dst = binary.BigEndian.AppendUint64(dst, m.Token)
	return append(dst, byte(m.Strategy), m.MaxHeight)
}

// Resume is the server's reply to Hello: the session token to present on
// the next reconnect, and whether the prior session's state was resumed
// (Resumed true) or a fresh registration was made (Resumed false). On a
// resume the server follows with any undelivered AlarmFired (Seq 0) and a
// Seq-0 refresh of the client's monitoring state.
type Resume struct {
	Token   uint64
	Resumed bool
}

// Kind implements Message.
func (Resume) Kind() Kind { return KindResume }

func (m Resume) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.Token)
	var b byte
	if m.Resumed {
		b = 1
	}
	return append(dst, b)
}

// Heartbeat is the dead-peer probe: a client sends one after an idle
// interval and the server echoes it back unchanged. Either side treats a
// sustained silence (no inbound traffic despite heartbeats) as a dead
// connection.
type Heartbeat struct {
	Nonce uint32
}

// Kind implements Message.
func (Heartbeat) Kind() Kind { return KindHeartbeat }

func (m Heartbeat) appendTo(dst []byte) []byte {
	return binary.BigEndian.AppendUint32(dst, m.Nonce)
}

// FiredAck acknowledges delivery of the listed alarm firings. The server
// retains a reliable session's firings until they are acked, re-sending
// them with later responses and resumes; the client's own dedup makes the
// resulting at-least-once redelivery exactly-once at the application
// layer.
type FiredAck struct {
	Alarms []uint64
}

// Kind implements Message.
func (FiredAck) Kind() Kind { return KindFiredAck }

func (m FiredAck) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Alarms)))
	for _, id := range m.Alarms {
		dst = binary.BigEndian.AppendUint64(dst, id)
	}
	return dst
}

// Redirect tells a client its session has moved to a different server
// (a cluster shard handoff, PROTOCOL.md "Redirect and handoff"): the
// client should drop this connection, dial Addr and present Token in its
// next Hello. The token was minted by the target shard when the session
// was imported there, so the redirected Hello resumes rather than
// re-enrolls. Epoch is the partition-map version the redirect was issued
// under (PROTOCOL.md "Redirect and handoff"): a client already holding a
// newer epoch ignores the frame as stale, otherwise it adopts the epoch.
// Addr is bounded to 64 KiB by its u16 length prefix.
type Redirect struct {
	Token uint64
	Epoch uint64
	Addr  string
}

// Kind implements Message.
func (Redirect) Kind() Kind { return KindRedirect }

func (m Redirect) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.Token)
	dst = binary.BigEndian.AppendUint64(dst, m.Epoch)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Addr)))
	return append(dst, m.Addr...)
}

// UpdateBatch carries several position reports in one frame. A client
// session coalesces the reports it would send in one tick (a fresh report
// plus any overdue resends); a gateway or benchmark harness may also pack
// reports from many users into one batch. Updates are processed in order;
// updates for the same user must appear in chronological order.
//
// Batching amortizes per-frame costs: the frame is charged as one uplink
// message, the server takes each user's lock once per contained run of
// updates, and only the last update of a user's run needs a full
// monitoring-state response (earlier ones are stale on arrival and get a
// bare Ack unless they fired).
type UpdateBatch struct {
	Updates []PositionUpdate
}

// Kind implements Message.
func (UpdateBatch) Kind() Kind { return KindUpdateBatch }

func (m UpdateBatch) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Updates)))
	for _, u := range m.Updates {
		dst = binary.BigEndian.AppendUint64(dst, u.User)
		dst = binary.BigEndian.AppendUint32(dst, u.Seq)
		dst = appendFloat(dst, u.Pos.X)
		dst = appendFloat(dst, u.Pos.Y)
	}
	return dst
}

// BatchEntry is one user's responses inside a BatchReply: the messages
// that would have answered that user's updates had they arrived as
// individual frames (AlarmFired first, then per-update monitoring state
// or Acks).
type BatchEntry struct {
	User uint64
	Msgs []Message
}

// BatchReply answers an UpdateBatch: one entry per user that appeared in
// the batch, in first-appearance order. Entries may be missing for
// updates a cluster router could not serve (owning shard down); the
// client's resend machinery retries those. Batch frames never nest.
type BatchReply struct {
	Entries []BatchEntry
}

// Kind implements Message.
func (BatchReply) Kind() Kind { return KindBatchReply }

func (m BatchReply) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Entries)))
	for _, e := range m.Entries {
		dst = binary.BigEndian.AppendUint64(dst, e.User)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(e.Msgs)))
		for _, inner := range e.Msgs {
			dst = binary.BigEndian.AppendUint32(dst, uint32(EncodedSize(inner)))
			dst = append(dst, byte(inner.Kind()))
			dst = inner.appendTo(dst)
		}
	}
	return dst
}

// SeqOf returns the sequence number a message carries and whether the
// message type has one. Session-layer code uses it to match responses to
// queued reports without enumerating every monitoring-state type.
func SeqOf(m Message) (uint32, bool) {
	switch v := m.(type) {
	case PositionUpdate:
		return v.Seq, true
	case RectRegion:
		return v.Seq, true
	case BitmapRegion:
		return v.Seq, true
	case AlarmPush:
		return v.Seq, true
	case SafePeriod:
		return v.Seq, true
	case AlarmFired:
		return v.Seq, true
	case Ack:
		return v.Seq, true
	default:
		return 0, false
	}
}

// Encode serializes a message with its leading kind byte.
func Encode(m Message) []byte {
	return m.appendTo([]byte{byte(m.Kind())})
}

// AppendEncode serializes a message (kind byte plus payload) into dst and
// returns the extended slice. Steady-state hot paths use it with pooled
// buffers so encoding allocates nothing once the buffer has grown.
func AppendEncode(dst []byte, m Message) []byte {
	dst = append(dst, byte(m.Kind()))
	return m.appendTo(dst)
}

// SizePositionUpdate is EncodedSize of a PositionUpdate as a constant, so
// the engine's hot path can charge uplink bytes without boxing the update
// into a Message interface (which would allocate).
const SizePositionUpdate = 1 + 8 + 4 + 16

// sizeUpdateBatch returns EncodedSize for a batch of n position updates.
func sizeUpdateBatch(n int) int { return 1 + 4 + n*28 }

// SizeUpdateBatch is EncodedSize of an UpdateBatch carrying n updates, as
// a function of n only — same boxing-avoidance purpose as
// SizePositionUpdate.
func SizeUpdateBatch(n int) int { return sizeUpdateBatch(n) }

// EncodedSize returns len(Encode(m)) without allocating — the quantity the
// bandwidth metrics charge. Pointer forms of the fixed-size response types
// are included so scratch-backed messages (see server.UpdateScratch) can
// be sized without hitting the allocating default case.
func EncodedSize(m Message) int {
	switch v := m.(type) {
	case Register:
		return 1 + 8 + 2
	case PositionUpdate, *PositionUpdate:
		return SizePositionUpdate
	case RectRegion, *RectRegion:
		return 1 + 4 + 32 + 4
	case BitmapRegion:
		return 1 + 4 + 32 + 3 + 4 + 4 + len(v.Data)
	case *BitmapRegion:
		return 1 + 4 + 32 + 3 + 4 + 4 + len(v.Data)
	case AlarmPush:
		return 1 + 4 + 32 + 4 + 4 + len(v.Alarms)*40
	case *AlarmPush:
		return 1 + 4 + 32 + 4 + 4 + len(v.Alarms)*40
	case SafePeriod, *SafePeriod:
		return 1 + 4 + 4
	case AlarmFired:
		return 1 + 4 + 4 + len(v.Alarms)*8
	case *AlarmFired:
		return 1 + 4 + 4 + len(v.Alarms)*8
	case Ack, *Ack:
		return 1 + 4 + 4
	case Hello:
		return 1 + 8 + 8 + 2
	case Resume:
		return 1 + 8 + 1
	case Heartbeat:
		return 1 + 4
	case FiredAck:
		return 1 + 4 + len(v.Alarms)*8
	case Redirect:
		return 1 + 8 + 8 + 2 + len(v.Addr)
	case UpdateBatch:
		return sizeUpdateBatch(len(v.Updates))
	case *UpdateBatch:
		return sizeUpdateBatch(len(v.Updates))
	case BatchReply:
		return sizeBatchReply(v.Entries)
	case *BatchReply:
		return sizeBatchReply(v.Entries)
	case InstallContinuous:
		return 1 + 8 + 4 + len(v.Subscribers)*8 + 32 + 4
	case InstallPair:
		return 1 + 8 + 8 + 8 + 4
	case InstallComposite:
		return 1 + 8 + 4 + len(v.Subscribers)*8 + 4 + len(v.Factors)*sizeFactor + 8 + 8
	case InstallReply:
		return 1 + 8
	default:
		return len(Encode(m))
	}
}

func sizeBatchReply(entries []BatchEntry) int {
	n := 1 + 4
	for _, e := range entries {
		n += 8 + 4
		for _, inner := range e.Msgs {
			n += 4 + EncodedSize(inner)
		}
	}
	return n
}

// Decode parses a message produced by Encode.
func Decode(buf []byte) (Message, error) {
	if len(buf) == 0 {
		return nil, ErrTruncated
	}
	r := reader{buf: buf[1:]}
	var m Message
	switch Kind(buf[0]) {
	case KindRegister:
		m = Register{User: r.u64(), Strategy: Strategy(r.u8()), MaxHeight: r.u8()}
	case KindPositionUpdate:
		m = PositionUpdate{User: r.u64(), Seq: r.u32(), Pos: geom.Pt(r.f64(), r.f64())}
	case KindRectRegion:
		m = RectRegion{Seq: r.u32(), Rect: r.rect(), Cap: r.u32()}
	case KindBitmapRegion:
		bm := BitmapRegion{Seq: r.u32(), Cell: r.rect(), U: r.u8(), V: r.u8(), Height: r.u8(), NBits: r.u32(), Cap: r.u32()}
		bm.Data = r.rest()
		m = bm
	case KindAlarmPush:
		ap := AlarmPush{Seq: r.u32(), Cell: r.rect(), Cap: r.u32()}
		n := r.u32()
		if r.err == nil && uint64(n)*40 > uint64(len(r.buf)-r.pos)+40 {
			return nil, ErrTruncated
		}
		ap.Alarms = make([]AlarmInfo, 0, n)
		for i := uint32(0); i < n && r.err == nil; i++ {
			ap.Alarms = append(ap.Alarms, AlarmInfo{ID: r.u64(), Region: r.rect()})
		}
		m = ap
	case KindSafePeriod:
		m = SafePeriod{Seq: r.u32(), Ticks: r.u32()}
	case KindAck:
		m = Ack{Seq: r.u32(), Cap: r.u32()}
	case KindAlarmFired:
		af := AlarmFired{Seq: r.u32()}
		n := r.u32()
		if r.err == nil && uint64(n)*8 > uint64(len(r.buf)-r.pos) {
			return nil, ErrTruncated
		}
		af.Alarms = make([]uint64, 0, n)
		for i := uint32(0); i < n && r.err == nil; i++ {
			af.Alarms = append(af.Alarms, r.u64())
		}
		m = af
	case KindHello:
		m = Hello{User: r.u64(), Token: r.u64(), Strategy: Strategy(r.u8()), MaxHeight: r.u8()}
	case KindResume:
		m = Resume{Token: r.u64(), Resumed: r.u8() != 0}
	case KindHeartbeat:
		m = Heartbeat{Nonce: r.u32()}
	case KindFiredAck:
		fa := FiredAck{}
		n := r.u32()
		if r.err == nil && uint64(n)*8 > uint64(len(r.buf)-r.pos) {
			return nil, ErrTruncated
		}
		for i := uint32(0); i < n && r.err == nil; i++ {
			fa.Alarms = append(fa.Alarms, r.u64())
		}
		m = fa
	case KindRedirect:
		rd := Redirect{Token: r.u64(), Epoch: r.u64()}
		n := int(r.u16())
		if r.err == nil && n > len(r.buf)-r.pos {
			return nil, ErrTruncated
		}
		if r.err == nil {
			rd.Addr = string(r.buf[r.pos : r.pos+n])
			r.pos += n
		}
		m = rd
	case KindUpdateBatch:
		ub := UpdateBatch{}
		n := r.u32()
		if r.err == nil && uint64(n)*28 > uint64(len(r.buf)-r.pos) {
			return nil, ErrTruncated
		}
		ub.Updates = make([]PositionUpdate, 0, n)
		for i := uint32(0); i < n && r.err == nil; i++ {
			ub.Updates = append(ub.Updates, PositionUpdate{
				User: r.u64(), Seq: r.u32(), Pos: geom.Pt(r.f64(), r.f64()),
			})
		}
		m = ub
	case KindBatchReply:
		br := BatchReply{}
		n := r.u32()
		// A minimal entry is 12 bytes (user + message count).
		if r.err == nil && uint64(n)*12 > uint64(len(r.buf)-r.pos) {
			return nil, ErrTruncated
		}
		br.Entries = make([]BatchEntry, 0, n)
		for i := uint32(0); i < n && r.err == nil; i++ {
			e := BatchEntry{User: r.u64()}
			nm := r.u32()
			// Each inner message costs at least its 4-byte length prefix.
			if r.err == nil && uint64(nm)*4 > uint64(len(r.buf)-r.pos) {
				return nil, ErrTruncated
			}
			e.Msgs = make([]Message, 0, nm)
			for j := uint32(0); j < nm && r.err == nil; j++ {
				l := int(r.u32())
				if r.err != nil {
					break
				}
				if l == 0 || l > len(r.buf)-r.pos {
					return nil, ErrTruncated
				}
				// Reject nested batch frames before recursing: batches never
				// nest, and the check bounds decode depth against hostile
				// input.
				if k := Kind(r.buf[r.pos]); k == KindUpdateBatch || k == KindBatchReply {
					return nil, fmt.Errorf("wire: nested batch frame inside batch reply")
				}
				inner, err := Decode(r.buf[r.pos : r.pos+l])
				if err != nil {
					return nil, err
				}
				r.pos += l
				e.Msgs = append(e.Msgs, inner)
			}
			br.Entries = append(br.Entries, e)
		}
		m = br
	case KindInstallContinuous:
		ic := InstallContinuous{Owner: r.u64()}
		ic.Subscribers = r.u64s()
		ic.Region = r.rect()
		ic.Cooldown = r.u32()
		m = ic
	case KindInstallPair:
		m = InstallPair{Owner: r.u64(), Anchor: r.u64(), Radius: r.f64(), Cooldown: r.u32()}
	case KindInstallComposite:
		co := InstallComposite{Owner: r.u64()}
		co.Subscribers = r.u64s()
		n := r.u32()
		if r.err == nil && uint64(n)*sizeFactor > uint64(len(r.buf)-r.pos) {
			return nil, ErrTruncated
		}
		co.Factors = make([]FactorInfo, 0, n)
		for i := uint32(0); i < n && r.err == nil; i++ {
			co.Factors = append(co.Factors, FactorInfo{
				Center: geom.Pt(r.f64(), r.f64()),
				Radius: r.f64(),
				Region: r.rect(),
				Weight: r.f64(),
			})
		}
		co.Threshold = r.f64()
		co.ExpiresAt = r.u64()
		m = co
	case KindInstallReply:
		m = InstallReply{ID: r.u64()}
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, buf[0])
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendRect(dst []byte, r geom.Rect) []byte {
	dst = appendFloat(dst, r.MinX)
	dst = appendFloat(dst, r.MinY)
	dst = appendFloat(dst, r.MaxX)
	return appendFloat(dst, r.MaxY)
}

// reader is a cursor over a payload that records the first error instead
// of returning one per call.
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.pos+n > len(r.buf) {
		r.err = ErrTruncated
		return false
	}
	return true
}

func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.pos:])
	r.pos += 2
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) rect() geom.Rect {
	return geom.Rect{MinX: r.f64(), MinY: r.f64(), MaxX: r.f64(), MaxY: r.f64()}
}

// u64s reads a u32-counted list of u64s with the usual count-vs-remaining
// guard.
func (r *reader) u64s() []uint64 {
	n := r.u32()
	if r.err == nil && uint64(n)*8 > uint64(len(r.buf)-r.pos) {
		r.err = ErrTruncated
	}
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		out = append(out, r.u64())
	}
	return out
}

func (r *reader) rest() []byte {
	if r.err != nil {
		return nil
	}
	out := append([]byte(nil), r.buf[r.pos:]...)
	r.pos = len(r.buf)
	return out
}
