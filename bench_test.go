// Benchmarks regenerating every figure of the paper's evaluation (§5) as
// testing.B series. Each sub-benchmark runs the full distributed
// simulation for one point of the figure's parameter sweep on the
// laptop-scale workload and reports the figure's metric via
// b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints both the runtime cost of a run and the reproduced series. The
// cmd/alarmbench binary runs the same sweeps at medium and paper scale
// with tabular output; EXPERIMENTS.md records the paper-vs-measured
// comparison.
package sabre_test

import (
	"sync"
	"testing"

	"github.com/sabre-geo/sabre/internal/motion"
	"github.com/sabre-geo/sabre/internal/sim"
	"github.com/sabre-geo/sabre/internal/wire"
)

// benchWorkload caches the workload across benchmarks (building the road
// network is not what we are measuring). The mutex keeps the cache safe
// when benchmarks run with parallel test binaries or from RunParallel
// bodies.
var (
	benchWorkloadsMu sync.Mutex
	benchWorkloads   = map[float64]*sim.Workload{}
)

func workloadFor(b *testing.B, publicFraction float64) *sim.Workload {
	b.Helper()
	benchWorkloadsMu.Lock()
	defer benchWorkloadsMu.Unlock()
	if w, ok := benchWorkloads[publicFraction]; ok {
		return w
	}
	cfg := sim.SmallWorkload(1)
	if publicFraction >= 0 {
		cfg.PublicFraction = publicFraction
	}
	w, err := sim.BuildWorkload(cfg)
	if err != nil {
		b.Fatal(err)
	}
	benchWorkloads[publicFraction] = w
	return w
}

func runOnce(b *testing.B, w *sim.Workload, sc sim.StrategyConfig) *sim.Report {
	b.Helper()
	r, err := sim.Run(w, sc)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkFig4aMessages: client→server messages vs grid cell size for the
// weighted and non-weighted rectangular safe region (paper Figure 4(a)).
func BenchmarkFig4aMessages(b *testing.B) {
	w := workloadFor(b, -1)
	for _, variant := range []struct {
		name  string
		model motion.Model
	}{
		{"nonweighted", motion.Uniform()},
		{"weighted-z32", motion.MustNew(1, 32)},
	} {
		for _, cell := range []float64{0.4, 2.5, 10} {
			b.Run(variant.name+"/cell-km2="+ftoa(cell), func(b *testing.B) {
				var last *sim.Report
				for i := 0; i < b.N; i++ {
					last = runOnce(b, w, sim.StrategyConfig{
						Strategy:    wire.StrategyMWPSR,
						Model:       variant.model,
						CellAreaKM2: cell,
					})
				}
				b.ReportMetric(float64(last.UplinkMessages), "msgs")
			})
		}
	}
}

// BenchmarkFig4bServerTime: server processing minutes vs cell size (paper
// Figure 4(b)).
func BenchmarkFig4bServerTime(b *testing.B) {
	w := workloadFor(b, -1)
	for _, cell := range []float64{0.4, 2.5, 10} {
		b.Run("cell-km2="+ftoa(cell), func(b *testing.B) {
			var last *sim.Report
			for i := 0; i < b.N; i++ {
				last = runOnce(b, w, sim.StrategyConfig{
					Strategy:    wire.StrategyMWPSR,
					Model:       motion.MustNew(1, 32),
					CellAreaKM2: cell,
				})
			}
			b.ReportMetric(last.AlarmProcessingMinutes*60, "alarmproc-s")
			b.ReportMetric(last.SafeRegionMinutes*60, "srcomp-s")
		})
	}
}

// BenchmarkFig5aMessages: messages vs pyramid height (paper Figure 5(a);
// h=1 is the GBSR).
func BenchmarkFig5aMessages(b *testing.B) {
	w := workloadFor(b, 0.10)
	for _, h := range []int{1, 3, 5, 7} {
		b.Run("h="+itoa(h), func(b *testing.B) {
			var last *sim.Report
			for i := 0; i < b.N; i++ {
				last = runOnce(b, w, sim.StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: h})
			}
			b.ReportMetric(float64(last.UplinkMessages), "msgs")
		})
	}
}

// BenchmarkFig5bEnergy: client containment-detection energy vs pyramid
// height (paper Figure 5(b)).
func BenchmarkFig5bEnergy(b *testing.B) {
	w := workloadFor(b, 0.10)
	for _, h := range []int{1, 3, 5, 7} {
		b.Run("h="+itoa(h), func(b *testing.B) {
			var last *sim.Report
			for i := 0; i < b.N; i++ {
				last = runOnce(b, w, sim.StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: h})
			}
			b.ReportMetric(last.ClientProbeEnergyMWh, "mWh")
		})
	}
}

// fig6Approaches are the approaches of the paper's Figure 6 comparison.
var fig6Approaches = []struct {
	name string
	sc   sim.StrategyConfig
}{
	{"PRD", sim.StrategyConfig{Strategy: wire.StrategyPeriodic}},
	{"MWPSR", sim.StrategyConfig{Strategy: wire.StrategyMWPSR, Model: motion.MustNew(1, 32)}},
	{"PBSR", sim.StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 5}},
	{"SP", sim.StrategyConfig{Strategy: wire.StrategySafePeriod}},
	{"OPT", sim.StrategyConfig{Strategy: wire.StrategyOptimal}},
}

// BenchmarkFig6aMessages: messages per approach (paper Figure 6(a)).
func BenchmarkFig6aMessages(b *testing.B) {
	w := workloadFor(b, 0.10)
	for _, a := range fig6Approaches {
		b.Run(a.name, func(b *testing.B) {
			var last *sim.Report
			for i := 0; i < b.N; i++ {
				last = runOnce(b, w, a.sc)
			}
			b.ReportMetric(float64(last.UplinkMessages), "msgs")
		})
	}
}

// BenchmarkFig6bBandwidth: downstream bandwidth per approach (paper
// Figure 6(b)).
func BenchmarkFig6bBandwidth(b *testing.B) {
	w := workloadFor(b, 0.10)
	for _, a := range fig6Approaches {
		if a.name == "PRD" || a.name == "SP" {
			continue // the paper excludes these from the bandwidth figure
		}
		b.Run(a.name, func(b *testing.B) {
			var last *sim.Report
			for i := 0; i < b.N; i++ {
				last = runOnce(b, w, a.sc)
			}
			b.ReportMetric(last.DownlinkMbps*1000, "kbps")
		})
	}
}

// BenchmarkFig6cEnergy: client energy per approach (paper Figure 6(c)).
func BenchmarkFig6cEnergy(b *testing.B) {
	w := workloadFor(b, 0.10)
	for _, a := range fig6Approaches {
		if a.name == "PRD" || a.name == "SP" {
			continue
		}
		b.Run(a.name, func(b *testing.B) {
			var last *sim.Report
			for i := 0; i < b.N; i++ {
				last = runOnce(b, w, a.sc)
			}
			b.ReportMetric(last.ClientEnergyMWh, "mWh")
		})
	}
}

// BenchmarkFig6dServerTime: server time decomposition per approach (paper
// Figure 6(d)).
func BenchmarkFig6dServerTime(b *testing.B) {
	w := workloadFor(b, 0.10)
	for _, a := range fig6Approaches {
		b.Run(a.name, func(b *testing.B) {
			var last *sim.Report
			for i := 0; i < b.N; i++ {
				last = runOnce(b, w, a.sc)
			}
			b.ReportMetric(last.AlarmProcessingMinutes*60, "alarmproc-s")
			b.ReportMetric(last.SafeRegionMinutes*60, "srcomp-s")
		})
	}
}

// BenchmarkAblationAssembly: greedy vs exhaustive MWPSR assembly (DESIGN.md
// ablation).
func BenchmarkAblationAssembly(b *testing.B) {
	w := workloadFor(b, -1)
	for _, mode := range []struct {
		name       string
		exhaustive bool
	}{{"greedy", false}, {"exhaustive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var last *sim.Report
			for i := 0; i < b.N; i++ {
				last = runOnce(b, w, sim.StrategyConfig{
					Strategy:           wire.StrategyMWPSR,
					Model:              motion.MustNew(1, 32),
					ExhaustiveAssembly: mode.exhaustive,
				})
			}
			b.ReportMetric(float64(last.UplinkMessages), "msgs")
		})
	}
}

// BenchmarkAblationPublicBitmap: PBSR with and without the §4.2 public
// bitmap precomputation.
func BenchmarkAblationPublicBitmap(b *testing.B) {
	w := workloadFor(b, 0.20)
	for _, mode := range []struct {
		name string
		pre  bool
	}{{"direct", false}, {"precomputed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var last *sim.Report
			for i := 0; i < b.N; i++ {
				last = runOnce(b, w, sim.StrategyConfig{
					Strategy:                wire.StrategyPBSR,
					PyramidHeight:           5,
					PrecomputePublicBitmaps: mode.pre,
				})
			}
			b.ReportMetric(last.SafeRegionMinutes*60, "srcomp-s")
		})
	}
}

func ftoa(f float64) string {
	switch f {
	case 0.4:
		return "0.4"
	case 2.5:
		return "2.5"
	case 10:
		return "10"
	default:
		return "x"
	}
}

func itoa(i int) string { return string(rune('0' + i)) }
