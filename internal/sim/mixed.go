package sim

import (
	"fmt"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/client"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/mobility"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/stats"
	"github.com/sabre-geo/sabre/internal/wire"
)

// MixedClass describes one device class in a heterogeneous fleet.
type MixedClass struct {
	Name string
	// Strategy is the processing approach for this class.
	Strategy wire.Strategy
	// PyramidHeight caps PBSR resolution for the class (0 = server
	// default) — the per-device capability knob of paper §4.
	PyramidHeight int
	// Fraction is the share of the fleet in this class; fractions are
	// normalized over the class list.
	Fraction float64
}

// ClassReport summarizes one class of a mixed run.
type ClassReport struct {
	Name              string
	Strategy          string
	Vehicles          int
	UplinkMessages    uint64
	ContainmentChecks uint64
	Probes            uint64
	EnergyMWh         float64
	PerClientMessages stats.Summary
}

// MixedReport is the outcome of a heterogeneous-fleet run.
type MixedReport struct {
	Classes  []ClassReport
	Triggers []Trigger

	DownlinkBytes      uint64
	TotalServerMinutes float64
}

// RunMixed executes one simulation in which the fleet is partitioned
// across device classes served by a single engine — the paper's
// heterogeneity argument (§4) at workload scale. The base StrategyConfig
// supplies the shared server knobs (cell size, motion model, precompute);
// its Strategy field is ignored.
func RunMixed(w *Workload, classes []MixedClass, base StrategyConfig) (*MixedReport, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("sim: no classes")
	}
	if base.PyramidHeight == 0 {
		base.PyramidHeight = 5
	}
	if base.BitmapMaxBits == 0 {
		base.BitmapMaxBits = 2048
	}
	if base.CellAreaKM2 == 0 {
		base.CellAreaKM2 = 2.5
	}
	var totalFrac float64
	for _, c := range classes {
		if c.Fraction < 0 {
			return nil, fmt.Errorf("sim: negative fraction for class %q", c.Name)
		}
		totalFrac += c.Fraction
	}
	if totalFrac <= 0 {
		return nil, fmt.Errorf("sim: class fractions sum to zero")
	}

	mobCfg := mobility.DefaultConfig(w.Config.Vehicles, w.Config.Seed)
	mob, err := mobility.NewSimulator(w.Net, mobCfg)
	if err != nil {
		return nil, err
	}
	eng, err := server.New(server.Config{
		Universe:                w.Net.Bounds().Expand(50),
		CellAreaM2:              base.CellAreaKM2 * 1e6,
		Model:                   base.Model,
		PyramidParams:           pyramidParams(base),
		MaxSpeed:                mob.MaxSpeed(),
		TickSeconds:             mobCfg.TickSeconds,
		PrecomputePublicBitmaps: base.PrecomputePublicBitmaps,
		Costs:                   metrics.DefaultCosts(),
	})
	if err != nil {
		return nil, err
	}
	if _, err := eng.Registry().InstallBatch(w.Alarms); err != nil {
		return nil, err
	}

	// Assign vehicles to classes by cumulative fraction, preserving the
	// class order (deterministic).
	classOf := make([]int, w.Config.Vehicles)
	bound := 0
	for ci, c := range classes {
		share := int(float64(w.Config.Vehicles) * c.Fraction / totalFrac)
		if ci == len(classes)-1 {
			share = w.Config.Vehicles - bound // remainder
		}
		for i := bound; i < bound+share && i < w.Config.Vehicles; i++ {
			classOf[i] = ci
		}
		bound += share
	}

	perClient := make([]metrics.Client, w.Config.Vehicles)
	clients := make([]*client.Client, w.Config.Vehicles)
	for i := range clients {
		user := uint64(i + 1)
		c := classes[classOf[i]]
		h := c.PyramidHeight
		if h == 0 {
			h = base.PyramidHeight
		}
		clients[i] = client.New(user, c.Strategy, &perClient[i])
		if err := eng.Register(wire.Register{
			User:      user,
			Strategy:  c.Strategy,
			MaxHeight: uint8(h),
		}); err != nil {
			return nil, err
		}
	}

	curTick := 0
	eng.SetPusher(func(user alarm.UserID, msgs []wire.Message) {
		idx := int(user) - 1
		if idx < 0 || idx >= len(clients) {
			return
		}
		for _, m := range msgs {
			_ = clients[idx].Handle(curTick, m)
		}
	})

	var triggers []Trigger
	for tick := 0; tick < w.Config.DurationTicks; tick++ {
		curTick = tick
		mob.Step()
		for i, cl := range clients {
			upd := cl.Tick(tick, mob.Position(i))
			if upd == nil {
				continue
			}
			responses, err := eng.HandleUpdate(*upd)
			if err != nil {
				return nil, fmt.Errorf("tick %d user %d: %w", tick, upd.User, err)
			}
			for _, resp := range responses {
				if fired, ok := resp.(wire.AlarmFired); ok {
					for _, id := range fired.Alarms {
						triggers = append(triggers, Trigger{User: upd.User, Alarm: id, Tick: tick})
					}
				}
				if err := cl.Handle(tick, resp); err != nil {
					return nil, err
				}
			}
			if len(responses) == 0 {
				cl.Acknowledge()
			}
		}
	}

	out := &MixedReport{
		Triggers:           triggers,
		DownlinkBytes:      eng.Metrics().Snapshot().DownlinkBytes,
		TotalServerMinutes: eng.Metrics().TotalSeconds() / 60,
	}
	energy := metrics.DefaultEnergy()
	for ci, c := range classes {
		cr := ClassReport{Name: c.Name, Strategy: c.Strategy.String()}
		var msgs []uint64
		for i := range clients {
			if classOf[i] != ci {
				continue
			}
			cr.Vehicles++
			cr.UplinkMessages += perClient[i].MessagesSent
			cr.ContainmentChecks += perClient[i].ContainmentChecks
			cr.Probes += perClient[i].Probes
			cr.EnergyMWh += perClient[i].Energy(energy)
			msgs = append(msgs, perClient[i].MessagesSent)
		}
		cr.PerClientMessages = stats.SummarizeUints(msgs)
		out.Classes = append(out.Classes, cr)
	}
	return out, nil
}
