package metrics

import (
	"math"
	"testing"
)

func TestServerCounters(t *testing.T) {
	s := NewServer(DefaultCosts())
	s.AddUplink(29)
	s.AddUplink(29)
	s.AddDownlink(37)
	if s.UplinkMessages != 2 || s.UplinkBytes != 58 {
		t.Errorf("uplink = %d msgs %d bytes", s.UplinkMessages, s.UplinkBytes)
	}
	if s.DownlinkMessages != 1 || s.DownlinkBytes != 37 {
		t.Errorf("downlink = %d msgs %d bytes", s.DownlinkMessages, s.DownlinkBytes)
	}
}

func TestCostModelSeconds(t *testing.T) {
	costs := CostParams{
		NodeAccessSeconds: 1,
		AlarmCheckSeconds: 10,
		CandidateSeconds:  100,
		CornerSeconds:     1000,
		BitmapTestSeconds: 10000,
	}
	s := NewServer(costs)
	s.AddAlarmEvaluation(3, 2)
	s.AddRectComputation(4, 5, 1)
	s.AddBitmapComputation(6)
	if got := s.AlarmProcessingSeconds(); got != 3*1+2*10 {
		t.Errorf("AlarmProcessingSeconds = %v", got)
	}
	if got := s.SafeRegionSeconds(); got != 4*100+5*1000+6*10000 {
		t.Errorf("SafeRegionSeconds = %v", got)
	}
	if got := s.TotalSeconds(); got != 23+65400 {
		t.Errorf("TotalSeconds = %v", got)
	}
	if s.AlarmEvaluations() != 1 || s.SafeRegionComputations() != 2 {
		t.Errorf("evaluations=%d computations=%d", s.AlarmEvaluations(), s.SafeRegionComputations())
	}
	if s.RectClips() != 1 {
		t.Errorf("RectClips = %d", s.RectClips())
	}
}

func TestDownlinkMbps(t *testing.T) {
	s := NewServer(DefaultCosts())
	s.AddDownlink(1e6 / 8) // one megabit
	if got := s.DownlinkMbps(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("DownlinkMbps = %v, want 1", got)
	}
	if got := s.DownlinkMbps(2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("DownlinkMbps over 2s = %v, want 0.5", got)
	}
	if got := s.DownlinkMbps(0); got != 0 {
		t.Errorf("DownlinkMbps with zero duration = %v", got)
	}
}

func TestClientCountersAndEnergy(t *testing.T) {
	var c Client
	c.AddCheck(1)
	c.AddCheck(5)
	c.MessagesSent = 3
	if c.ContainmentChecks != 2 || c.Probes != 6 {
		t.Errorf("checks=%d probes=%d", c.ContainmentChecks, c.Probes)
	}
	p := EnergyParams{ProbeMilliWattHours: 2, RadioMilliWattHours: 10}
	if got := c.Energy(p); got != 6*2+3*10 {
		t.Errorf("Energy = %v", got)
	}
	var agg Client
	agg.Merge(c)
	agg.Merge(c)
	if agg.Probes != 12 || agg.MessagesSent != 6 || agg.ContainmentChecks != 4 {
		t.Errorf("merge wrong: %+v", agg)
	}
}

func TestDefaultsPositive(t *testing.T) {
	c := DefaultCosts()
	for name, v := range map[string]float64{
		"NodeAccess": c.NodeAccessSeconds,
		"AlarmCheck": c.AlarmCheckSeconds,
		"Candidate":  c.CandidateSeconds,
		"Corner":     c.CornerSeconds,
		"BitmapTest": c.BitmapTestSeconds,
	} {
		if v <= 0 {
			t.Errorf("%s cost not positive", name)
		}
	}
	e := DefaultEnergy()
	if e.ProbeMilliWattHours <= 0 || e.RadioMilliWattHours <= 0 {
		t.Error("energy params not positive")
	}
}
