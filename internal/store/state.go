package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/wire"
)

// DefaultPendingCap is the per-session bound on unacknowledged firings a
// server retains (PROTOCOL.md "Sessions"): a reliable client that never
// sends FiredAck would otherwise grow its pending set forever. When the
// cap is exceeded the oldest ids are evicted — they stay marked fired
// (never re-trigger) but are no longer redelivered.
const DefaultPendingCap = 1024

// snapshotVersion guards the on-disk snapshot format.
const snapshotVersion = 1

// ClientRec is one client's durable registration state.
type ClientRec struct {
	User      uint64        `json:"user"`
	Strategy  wire.Strategy `json:"strategy"`
	MaxHeight uint8         `json:"maxHeight,omitempty"`
	Reliable  bool          `json:"reliable,omitempty"`
	// PendingFired holds fired-but-unacknowledged alarm ids, oldest first.
	PendingFired []uint64 `json:"pendingFired,omitempty"`
	// Epoch is the partition-map epoch of the shard that exported this
	// session (zero for non-cluster sessions). The importer uses it to
	// stamp Redirects so stale-epoch clients can be told the map moved.
	Epoch uint64 `json:"epoch,omitempty"`
	// Lifecycle carries the user's continuous/pair machines across a
	// session handoff, so the importing shard resumes every Armed/Inside
	// phase and occurrence count. Populated only in exported session
	// records — registry-wide lifecycle state lives in State.Lifecycle.
	Lifecycle []alarm.LifecycleState `json:"lifecycle,omitempty"`
	// LastSeq is the newest report sequence the exporting shard accepted.
	// The importer seeds its stale-report gate with it, so a queued resend
	// that chases the session across a handoff cannot replay an old
	// position into the lifecycle machines as if it were fresh.
	LastSeq uint32 `json:"lastSeq,omitempty"`
}

// SessionRec maps one resume token to its user.
type SessionRec struct {
	Token uint64 `json:"token"`
	User  uint64 `json:"user"`
}

// State is the full durable server state: everything a restarted engine
// needs so its observable behaviour matches an uninterrupted run. Soft
// state (last positions, bitmap base cells, motion headings, public-
// bitmap caches) is deliberately absent — it regenerates from the next
// report and never affects which alarms are delivered.
type State struct {
	NextAlarmID uint64            `json:"nextAlarmId"`
	Alarms      []alarm.Alarm     `json:"alarms,omitempty"`
	Fired       []alarm.FiredPair `json:"fired,omitempty"`
	Clients     []ClientRec       `json:"clients,omitempty"`
	Sessions    []SessionRec      `json:"sessions,omitempty"`
	LastToken   uint64            `json:"lastToken"`
	// Epoch is the highest partition-map epoch this shard has served
	// (zero outside a cluster). Epochs only move forward.
	Epoch uint64 `json:"epoch,omitempty"`
	// Lifecycle holds every mid-flight continuous/pair machine
	// (Inside/Armed phase + occurrence counts), sorted by (alarm, user).
	Lifecycle []alarm.LifecycleState `json:"lifecycle,omitempty"`
}

// snapshotFile is the on-disk envelope around a State.
type snapshotFile struct {
	Version int   `json:"version"`
	State   State `json:"state"`
}

// stateBuilder holds State in map form for efficient record application.
type stateBuilder struct {
	alarms     map[alarm.ID]alarm.Alarm
	fired      map[alarm.FiredPair]struct{}
	lifecycle  map[lcKey]alarm.LifecycleState
	clients    map[uint64]*ClientRec
	sessions   map[uint64]uint64 // token -> user
	nextID     uint64
	lastToken  uint64
	epoch      uint64
	pendingCap int
}

// lcKey identifies one lifecycle machine: (alarm, user).
type lcKey struct {
	alarm alarm.ID
	user  uint64
}

func newBuilder(base *State, pendingCap int) *stateBuilder {
	if pendingCap == 0 {
		pendingCap = DefaultPendingCap
	}
	b := &stateBuilder{
		alarms:     make(map[alarm.ID]alarm.Alarm),
		fired:      make(map[alarm.FiredPair]struct{}),
		lifecycle:  make(map[lcKey]alarm.LifecycleState),
		clients:    make(map[uint64]*ClientRec),
		sessions:   make(map[uint64]uint64),
		nextID:     1,
		pendingCap: pendingCap,
	}
	if base == nil {
		return b
	}
	b.nextID = base.NextAlarmID
	if b.nextID == 0 {
		b.nextID = 1
	}
	b.lastToken = base.LastToken
	b.epoch = base.Epoch
	for _, a := range base.Alarms {
		b.alarms[a.ID] = a
	}
	for _, p := range base.Fired {
		b.fired[p] = struct{}{}
	}
	for _, st := range base.Lifecycle {
		b.lifecycle[lcKey{st.Alarm, st.User}] = st
	}
	for _, c := range base.Clients {
		cc := c
		cc.PendingFired = append([]uint64(nil), c.PendingFired...)
		b.clients[c.User] = &cc
	}
	for _, s := range base.Sessions {
		b.sessions[s.Token] = s.User
	}
	return b
}

// apply folds one record into the state. Every case is idempotent: a
// record whose effect is already present (because the snapshot captured
// state between a mutation and its log append) re-applies harmlessly.
func (b *stateBuilder) apply(rec Record) {
	switch r := rec.(type) {
	case InstallRec:
		if _, ok := b.alarms[r.Alarm.ID]; !ok {
			b.alarms[r.Alarm.ID] = r.Alarm
		}
		if uint64(r.Alarm.ID) >= b.nextID {
			b.nextID = uint64(r.Alarm.ID) + 1
		}
	case RemoveRec:
		delete(b.alarms, r.ID)
		b.dropLifecycle(r.ID)
	case AlarmExpireRec:
		delete(b.alarms, r.ID)
		b.dropLifecycle(r.ID)
	case RegisterRec:
		b.clients[r.User] = &ClientRec{User: r.User, Strategy: r.Strategy, MaxHeight: r.MaxHeight}
	case HelloRec:
		var carried []uint64
		if old := b.clients[r.User]; old != nil && old.Reliable {
			carried = append([]uint64(nil), old.PendingFired...)
		}
		b.clients[r.User] = &ClientRec{
			User: r.User, Strategy: r.Strategy, MaxHeight: r.MaxHeight,
			Reliable: true, PendingFired: carried,
		}
		b.sessions[r.Token] = r.User
		if r.Token > b.lastToken {
			b.lastToken = r.Token
		}
	case FiredRec:
		cl := b.clients[r.User]
		for _, id := range r.Alarms {
			// Ids may be packed lifecycle events (carried pending firings
			// logged on session import). Only one-shot firings and
			// composite severity events mark a fired pair; enter/exit
			// events re-arm and must never suppress future evaluation.
			switch alarm.EventTransition(id) {
			case alarm.TransFired:
				b.fired[alarm.FiredPair{Alarm: alarm.ID(id), User: r.User}] = struct{}{}
			case alarm.TransSeverity:
				b.fired[alarm.FiredPair{Alarm: alarm.EventAlarm(id), User: r.User}] = struct{}{}
			}
			if cl != nil && cl.Reliable && !containsID(cl.PendingFired, id) {
				cl.PendingFired = append(cl.PendingFired, id)
			}
		}
		b.capPending(cl)
	case TransitionRec:
		switch alarm.EventTransition(r.Event) {
		case alarm.TransSeverity:
			b.fired[alarm.FiredPair{Alarm: alarm.EventAlarm(r.Event), User: r.User}] = struct{}{}
		case alarm.TransEnter, alarm.TransExit:
			if st, ok := alarm.TransitionState(alarm.UserID(r.User), r.Event, r.Tick); ok {
				k := lcKey{st.Alarm, st.User}
				// Progress is monotone per machine, so replaying out of
				// snapshot order (or twice) keeps the furthest state.
				if old, exists := b.lifecycle[k]; !exists || st.Progress() > old.Progress() {
					b.lifecycle[k] = st
				}
			}
		}
		if r.Delivered {
			if cl := b.clients[r.User]; cl != nil && cl.Reliable {
				if !containsID(cl.PendingFired, r.Event) {
					cl.PendingFired = append(cl.PendingFired, r.Event)
				}
				b.capPending(cl)
			}
		}
	case FiredAckRec:
		cl := b.clients[r.User]
		if cl == nil || len(cl.PendingFired) == 0 {
			return
		}
		acked := make(map[uint64]bool, len(r.Alarms))
		for _, id := range r.Alarms {
			acked[id] = true
		}
		keep := cl.PendingFired[:0]
		for _, id := range cl.PendingFired {
			if !acked[id] {
				keep = append(keep, id)
			}
		}
		cl.PendingFired = keep
	case ExpireRec:
		delete(b.clients, r.User)
		for tok, user := range b.sessions {
			if user == r.User {
				delete(b.sessions, tok)
			}
		}
	case EpochRec:
		if r.Epoch > b.epoch {
			b.epoch = r.Epoch
		}
	}
}

// dropLifecycle scrubs every lifecycle machine of one alarm, mirroring
// what registry removal does in memory.
func (b *stateBuilder) dropLifecycle(id alarm.ID) {
	for k := range b.lifecycle {
		if k.alarm == id {
			delete(b.lifecycle, k)
		}
	}
}

// capPending enforces the per-session pending-firings bound, evicting
// oldest first (same policy the engine applies).
func (b *stateBuilder) capPending(cl *ClientRec) {
	if cl != nil && len(cl.PendingFired) > b.pendingCap {
		drop := len(cl.PendingFired) - b.pendingCap
		cl.PendingFired = append(cl.PendingFired[:0], cl.PendingFired[drop:]...)
	}
}

func containsID(s []uint64, id uint64) bool {
	for _, v := range s {
		if v == id {
			return true
		}
	}
	return false
}

// finish converts the builder back into a deterministic (sorted) State.
func (b *stateBuilder) finish() *State {
	st := &State{NextAlarmID: b.nextID, LastToken: b.lastToken, Epoch: b.epoch}
	for _, a := range b.alarms {
		st.Alarms = append(st.Alarms, a)
	}
	sort.Slice(st.Alarms, func(i, j int) bool { return st.Alarms[i].ID < st.Alarms[j].ID })
	for p := range b.fired {
		st.Fired = append(st.Fired, p)
	}
	sort.Slice(st.Fired, func(i, j int) bool {
		if st.Fired[i].Alarm != st.Fired[j].Alarm {
			return st.Fired[i].Alarm < st.Fired[j].Alarm
		}
		return st.Fired[i].User < st.Fired[j].User
	})
	for _, st2 := range b.lifecycle {
		st.Lifecycle = append(st.Lifecycle, st2)
	}
	sort.Slice(st.Lifecycle, func(i, j int) bool {
		if st.Lifecycle[i].Alarm != st.Lifecycle[j].Alarm {
			return st.Lifecycle[i].Alarm < st.Lifecycle[j].Alarm
		}
		return st.Lifecycle[i].User < st.Lifecycle[j].User
	})
	for _, c := range b.clients {
		st.Clients = append(st.Clients, *c)
	}
	sort.Slice(st.Clients, func(i, j int) bool { return st.Clients[i].User < st.Clients[j].User })
	for tok, user := range b.sessions {
		st.Sessions = append(st.Sessions, SessionRec{Token: tok, User: user})
	}
	sort.Slice(st.Sessions, func(i, j int) bool { return st.Sessions[i].Token < st.Sessions[j].Token })
	return st
}

// Normalize sorts the state slices so two captures of identical state
// compare equal; engines capture maps in arbitrary order.
func (s *State) Normalize() {
	b := newBuilder(s, 0)
	*s = *b.finish()
}

// EncodeState serializes a full state in the snapshot format (the
// payload of a ReplSnapshot frame).
func EncodeState(s *State) []byte {
	var buf bytes.Buffer
	// writeSnapshot only fails on writer errors; bytes.Buffer has none.
	_ = writeSnapshot(&buf, s)
	return buf.Bytes()
}

// DecodeState parses an EncodeState payload, with the same validation a
// snapshot file gets.
func DecodeState(data []byte) (*State, error) {
	return readSnapshot(bytes.NewReader(data))
}

// Applier folds a record stream into a live State incrementally — the
// follower's warm-state builder, sharing the exact apply logic recovery
// uses. Not safe for concurrent use.
type Applier struct {
	b *stateBuilder
}

// NewApplier starts from base (nil means empty) with the given
// pending-firings cap (0 means DefaultPendingCap).
func NewApplier(base *State, pendingCap int) *Applier {
	return &Applier{b: newBuilder(base, pendingCap)}
}

// Apply folds one record.
func (a *Applier) Apply(rec Record) { a.b.apply(rec) }

// State materializes the current state (sorted, deterministic). The
// applier remains usable afterwards.
func (a *Applier) State() *State { return a.b.finish() }

// writeSnapshot serializes the state deterministically.
func writeSnapshot(w io.Writer, s *State) error {
	cp := *s
	cp.Normalize()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(snapshotFile{Version: snapshotVersion, State: cp}); err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	return nil
}

// readSnapshot parses and validates a snapshot stream.
func readSnapshot(r io.Reader) (*State, error) {
	var f snapshotFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("store: decode snapshot: %w", err)
	}
	if f.Version != snapshotVersion {
		return nil, fmt.Errorf("store: snapshot version %d, want %d", f.Version, snapshotVersion)
	}
	for i := range f.State.Alarms {
		a := &f.State.Alarms[i]
		// Pair alarms have no static region — their trigger zone moves
		// with the anchor — so an empty region is only valid for them.
		if a.Region.Empty() && a.Kind != alarm.KindPair {
			return nil, fmt.Errorf("store: snapshot alarm %d has empty region %v", a.ID, a.Region)
		}
		switch a.Scope {
		case alarm.Private, alarm.Shared, alarm.Public:
		default:
			return nil, fmt.Errorf("store: snapshot alarm %d has invalid scope %d", a.ID, a.Scope)
		}
	}
	return &f.State, nil
}
