package sim

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/client"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/mobility"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/stats"
	"github.com/sabre-geo/sabre/internal/store"
	"github.com/sabre-geo/sabre/internal/transport"
	"github.com/sabre-geo/sabre/internal/wire"
)

// CrashEvent scripts one server process death mid-workload.
type CrashEvent struct {
	// Tick is when the process dies (before that tick's reports are
	// served).
	Tick int
	// Tear is how the death mangles the WAL tail: a record-boundary kill
	// (TearNone), a torn final write, trailing garbage, or a flipped bit —
	// all confined to the final frame, which is the only frame a
	// single-write(2)-per-record log can lose.
	Tear store.TearMode
	// Down is how many ticks the server stays dead before recovery; client
	// dials fail throughout.
	Down int
}

// CrashPlan scripts a deterministic crash campaign for RunCrashing.
type CrashPlan struct {
	// Seed drives the tail-mangling byte/bit choices and the client
	// sessions' backoff jitter.
	Seed int64
	// Crashes fire in tick order.
	Crashes []CrashEvent
	// SnapshotEvery is the store's automatic checkpoint cadence in WAL
	// appends (0 disables; recovery then replays the whole log).
	SnapshotEvery int
	// Fsync syncs the WAL per append. Process crashes (what this harness
	// simulates) never lose buffered OS writes, so the default off keeps
	// the suite fast; the discipline is identical either way.
	Fsync bool
	// Session tunes the client session state machines.
	Session client.SessionConfig
	// DrainTicks extends the run past the trace end so sessions reconnect
	// and collect redelivered firings.
	DrainTicks int
}

// DefaultCrashPlan kills the server three times across the trace — a
// clean record-boundary kill, a torn final write, and a flipped bit —
// with a few ticks of downtime each.
func DefaultCrashPlan(seed int64, durationTicks int) CrashPlan {
	return CrashPlan{
		Seed: seed,
		Crashes: []CrashEvent{
			{Tick: durationTicks / 4, Tear: store.TearNone, Down: 3},
			{Tick: durationTicks / 2, Tear: store.TearTruncate, Down: 3},
			{Tick: durationTicks * 3 / 4, Tear: store.TearFlipBit, Down: 3},
		},
		SnapshotEvery: 256,
		DrainTicks:    200,
	}
}

// crashLink is one client's live connection: plain pipes (the network is
// healthy in this harness; the process is what fails).
type crashLink struct {
	user uint64
	cli  transport.Conn
	srv  transport.PollingConn
}

// RunCrashing executes one strategy over the workload against a durable
// engine that is killed and recovered from disk (dataDir) at the
// scripted ticks. Sessions outlive the process: their resume tokens are
// recovered from the log, so reconnecting clients resume rather than
// re-enroll. Triggers are recorded at client delivery (deduplicated), so
// the (User, Alarm) set must equal a fault-free Run's — which
// TestCrashRecoveryDeliveryEquality asserts per strategy. Fully
// deterministic for a fixed workload, strategy, plan and dataDir.
func RunCrashing(w *Workload, sc StrategyConfig, plan CrashPlan, dataDir string) (*Report, error) {
	if dataDir == "" {
		// Keep the scratch space tidy: callers without a data dir (tests
		// should pass t.TempDir()) get a temp dir removed before return.
		tmp, err := os.MkdirTemp("", "sabre-crash-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	}
	if sc.PyramidHeight == 0 {
		sc.PyramidHeight = 5
	}
	if sc.BitmapMaxBits == 0 {
		sc.BitmapMaxBits = 2048
	}
	if sc.CellAreaKM2 == 0 {
		sc.CellAreaKM2 = 2.5
	}
	mobCfg := mobility.DefaultConfig(w.Config.Vehicles, w.Config.Seed)
	mob, err := mobility.NewSimulator(w.Net, mobCfg)
	if err != nil {
		return nil, err
	}
	universe := w.Net.Bounds().Expand(50)
	engCfg := server.Config{
		Universe:                universe,
		CellAreaM2:              sc.CellAreaKM2 * 1e6,
		Model:                   sc.Model,
		PyramidParams:           pyramidParams(sc),
		MaxSpeed:                mob.MaxSpeed(),
		TickSeconds:             mobCfg.TickSeconds,
		PrecomputePublicBitmaps: sc.PrecomputePublicBitmaps,
		ExhaustiveAssembly:      sc.ExhaustiveAssembly,
		UseBucketIndex:          sc.BucketIndex,
		SafePeriodSpeedFactor:   sc.SafePeriodSpeedFactor,
		Costs:                   metrics.DefaultCosts(),
	}

	n := w.Config.Vehicles
	links := make([]*crashLink, n)

	// boot opens (or recovers) the store and rebuilds the engine from it.
	// Cumulative counters (uplink bytes, evaluations, ...) reset with each
	// incarnation — the Report reflects the final one — but the durable
	// state does not.
	var eng *server.Engine
	boot := func() error {
		st, state, info, err := store.Open(dataDir, store.Options{
			Fsync:         plan.Fsync,
			SnapshotEvery: plan.SnapshotEvery,
		})
		if err != nil {
			return err
		}
		eng, err = server.NewDurable(engCfg, st, state, info)
		if err != nil {
			return err
		}
		eng.SetPusher(func(user alarm.UserID, msgs []wire.Message) {
			idx := int(user) - 1
			if idx < 0 || idx >= n || links[idx] == nil {
				return
			}
			for _, m := range msgs {
				if links[idx].srv.Send(m) != nil {
					return
				}
			}
		})
		return nil
	}
	if err := boot(); err != nil {
		return nil, err
	}
	// Install the alarm table durably on the first boot only; recoveries
	// reconstruct it from disk.
	if eng.Registry().Len() == 0 {
		if _, err := eng.InstallAlarms(w.Alarms); err != nil {
			return nil, err
		}
	}

	perClient := make([]metrics.Client, n)
	sessions := make([]*client.Session, n)
	curTick := 0
	var triggers []Trigger

	for i := 0; i < n; i++ {
		i := i
		user := uint64(i + 1)
		cl := client.New(user, sc.Strategy, &perClient[i])
		scfg := plan.Session
		scfg.MaxHeight = uint8(sc.PyramidHeight)
		scfg.JitterSeed = plan.Seed ^ int64(user)<<17
		dial := func() (transport.Conn, error) {
			if eng == nil {
				return nil, fmt.Errorf("sim: server down")
			}
			cEnd, sEnd := transport.Pipe(4096)
			links[i] = &crashLink{user: user, cli: cEnd, srv: transport.Poller(sEnd)}
			return cEnd, nil
		}
		sessions[i] = client.NewSession(cl, dial, scfg, &perClient[i])
		sessions[i].OnFired = func(ids []uint64) {
			for _, id := range ids {
				triggers = append(triggers, Trigger{User: user, Alarm: id, Tick: curTick})
			}
		}
	}

	rng := rand.New(rand.NewSource(plan.Seed ^ 0x5ABE))
	crashIdx := 0
	downUntil := -1

	positions := make([]geom.Point, n)
	var serverWall time.Duration
	total := w.Config.DurationTicks + plan.DrainTicks
	for tick := 0; tick < total; tick++ {
		curTick = tick
		if tick < w.Config.DurationTicks {
			mob.Step()
			for i := range positions {
				positions[i] = mob.Position(i)
			}
		}

		// Phase 1: process lifecycle. A scripted crash kills the store,
		// mangles the WAL tail, and severs every connection; after the
		// downtime the engine is rebuilt from whatever survived on disk.
		if eng != nil && crashIdx < len(plan.Crashes) && tick >= plan.Crashes[crashIdx].Tick {
			ev := plan.Crashes[crashIdx]
			crashIdx++
			walPath := eng.Store().WALPath()
			eng.Store().Kill()
			if err := store.MangleTail(walPath, ev.Tear, rng); err != nil {
				return nil, fmt.Errorf("sim: crash %d mangle: %w", crashIdx, err)
			}
			for i, ln := range links {
				if ln != nil {
					ln.cli.Close()
					links[i] = nil
				}
			}
			eng = nil
			downUntil = tick + ev.Down
		}
		if eng == nil && tick >= downUntil {
			if err := boot(); err != nil {
				return nil, fmt.Errorf("sim: recovery at tick %d: %w", tick, err)
			}
		}

		// Phase 2: sessions evaluate, (re)connect and send in index order.
		for i, s := range sessions {
			if tick < w.Config.DurationTicks {
				s.Step(tick, positions[i])
			} else {
				s.Quiesce(tick)
			}
		}

		// Phase 3: the live server drains each link in index order.
		if eng == nil {
			continue
		}
		for i, ln := range links {
			if ln == nil {
				continue
			}
			if err := serveCrashLink(eng, ln, &serverWall); err != nil {
				if err == transport.ErrClosed {
					links[i] = nil
					continue
				}
				return nil, fmt.Errorf("tick %d user %d: %w", tick, ln.user, err)
			}
		}
	}

	for i, s := range sessions {
		if qs := s.QueueLen(); qs > 0 {
			return nil, fmt.Errorf("sim: user %d still has %d undrained reports after %d drain ticks — extend DrainTicks or crash earlier", i+1, qs, plan.DrainTicks)
		}
	}
	if crashIdx != len(plan.Crashes) {
		return nil, fmt.Errorf("sim: only %d of %d crashes fired — trace too short for the plan", crashIdx, len(plan.Crashes))
	}

	clientMet := &metrics.Client{}
	msgsPerClient := make([]uint64, n)
	for i := range perClient {
		clientMet.Merge(perClient[i])
		msgsPerClient[i] = perClient[i].MessagesSent
	}
	met := eng.Metrics().Snapshot()
	traceSeconds := float64(w.Config.DurationTicks) * mobCfg.TickSeconds
	return &Report{
		Strategy:               sc.Strategy.String(),
		Vehicles:               n,
		DurationTicks:          w.Config.DurationTicks,
		UplinkMessages:         met.UplinkMessages,
		UplinkBytes:            met.UplinkBytes,
		DownlinkMessages:       met.DownlinkMessages,
		DownlinkBytes:          met.DownlinkBytes,
		DownlinkMbps:           met.DownlinkMbps(traceSeconds),
		UpdateBatches:          met.UpdateBatches,
		BatchedUpdates:         met.BatchedUpdates,
		ClientChecks:           clientMet.ContainmentChecks,
		ClientProbes:           clientMet.Probes,
		ClientEnergyMWh:        clientMet.Energy(metrics.DefaultEnergy()),
		ClientProbeEnergyMWh:   float64(clientMet.Probes) * metrics.DefaultEnergy().ProbeMilliWattHours,
		PerClientMessages:      stats.SummarizeUints(msgsPerClient),
		AlarmProcessingMinutes: met.AlarmProcessingSeconds() / 60,
		SafeRegionMinutes:      met.SafeRegionSeconds() / 60,
		TotalServerMinutes:     met.TotalSeconds() / 60,
		SafeRegionComputations: met.SafeRegionComputations,
		AlarmEvaluations:       met.AlarmEvaluations,
		RectClips:              met.RectClips,
		MeasuredServerSeconds:  serverWall.Seconds(),
		Triggers:               triggers,
	}, nil
}

// serveCrashLink drains one link's pending uplink messages and replies.
func serveCrashLink(eng *server.Engine, ln *crashLink, wall *time.Duration) error {
	for {
		m, ok, err := ln.srv.TryRecv()
		if err != nil {
			return transport.ErrClosed
		}
		if !ok {
			return nil
		}
		var responses []wire.Message
		switch v := m.(type) {
		case wire.Hello:
			responses, _, err = eng.HandleHello(v)
			if err != nil {
				return err
			}
		case wire.Heartbeat:
			responses = eng.HandleHeartbeat(alarm.UserID(ln.user), v)
		case wire.FiredAck:
			if err = eng.AckFired(alarm.UserID(ln.user), v.Alarms); err != nil {
				return err
			}
		case wire.PositionUpdate:
			start := time.Now()
			responses, err = eng.HandleUpdate(v)
			*wall += time.Since(start)
			if err != nil {
				return err
			}
			if len(responses) == 0 {
				responses = []wire.Message{wire.Ack{Seq: v.Seq}}
			}
		default:
			return fmt.Errorf("sim: unexpected uplink message %v", m.Kind())
		}
		for _, r := range responses {
			if ln.srv.Send(r) != nil {
				return transport.ErrClosed
			}
		}
	}
}
