package server

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/wire"
)

// installBatchAlarms puts two public alarm regions on the test users'
// shared path.
func installBatchAlarms(t *testing.T, e *Engine) (alarm.ID, alarm.ID) {
	a1 := install(t, e, alarm.Alarm{Scope: alarm.Public, Owner: 99, Region: geom.RectAround(geom.Pt(500, 500), 100)})
	a2 := install(t, e, alarm.Alarm{Scope: alarm.Public, Owner: 99, Region: geom.RectAround(geom.Pt(1500, 500), 100)})
	return a1, a2
}

// TestHandleUpdateBatchEquivalence drives the same updates through a
// batched engine and an unbatched twin and asserts identical trigger
// delivery, identical registry fired state, and the batch reply contract:
// one entry per user in first-appearance order, at least one message per
// update, full strategy response only on each user's last update.
func TestHandleUpdateBatchEquivalence(t *testing.T) {
	single := newEngine(t, nil)
	batched := newEngine(t, nil)
	installBatchAlarms(t, single)
	a1, a2 := installBatchAlarms(t, batched)

	strategies := map[uint64]wire.Strategy{
		1: wire.StrategyMWPSR,
		2: wire.StrategyPBSR,
		3: wire.StrategyPeriodic,
		4: wire.StrategySafePeriod,
	}
	for u, s := range strategies {
		register(t, single, u, s)
		register(t, batched, u, s)
	}

	// Each user walks safe → inside alarm 1 → still inside → inside
	// alarm 2. Updates are interleaved across users to exercise grouping.
	path := []geom.Point{geom.Pt(3000, 3000), geom.Pt(500, 500), geom.Pt(520, 510), geom.Pt(1500, 500)}
	var batch wire.UpdateBatch
	seq := map[uint64]uint32{}
	for _, p := range path {
		for u := uint64(1); u <= 4; u++ {
			seq[u]++
			batch.Updates = append(batch.Updates, wire.PositionUpdate{User: u, Seq: seq[u], Pos: p})
		}
	}

	singleFired := map[uint64][]uint64{}
	for _, u := range batch.Updates {
		out, err := single.HandleUpdate(u)
		if err != nil {
			t.Fatal(err)
		}
		singleFired[u.User] = append(singleFired[u.User], firedIn(out)...)
	}

	reply, err := batched.HandleUpdateBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(reply.Entries), 4; got != want {
		t.Fatalf("entries = %d, want %d", got, want)
	}
	for i, ent := range reply.Entries {
		if ent.User != uint64(i+1) {
			t.Errorf("entry %d user = %d, want first-appearance order", i, ent.User)
		}
		if len(ent.Msgs) < len(path) {
			t.Errorf("user %d: %d msgs for %d updates; every update needs an answer",
				ent.User, len(ent.Msgs), len(path))
		}
		if got, want := firedIn(ent.Msgs), singleFired[ent.User]; !reflect.DeepEqual(got, want) {
			t.Errorf("user %d delivered fired = %v, unbatched %v", ent.User, got, want)
		}
		// Only the final update carries monitoring state; every earlier
		// message is an Ack or AlarmFired.
		for _, m := range ent.Msgs[:len(ent.Msgs)-1] {
			switch m.Kind() {
			case wire.KindAck, wire.KindAlarmFired:
			default:
				t.Errorf("user %d: intermediate message %v", ent.User, m.Kind())
			}
		}
		switch strategies[ent.User] {
		case wire.StrategyMWPSR, wire.StrategyPBSR:
			last := ent.Msgs[len(ent.Msgs)-1]
			if k := last.Kind(); k != wire.KindRectRegion && k != wire.KindBitmapRegion {
				t.Errorf("user %d: final message %v, want a safe region", ent.User, k)
			}
		}
	}
	for u := uint64(1); u <= 4; u++ {
		for _, id := range []alarm.ID{a1, a2} {
			if !batched.Registry().Fired(id, alarm.UserID(u)) {
				t.Errorf("alarm %d not marked fired for user %d after batch", id, u)
			}
		}
	}
}

// TestHandleUpdateBatchAccounting checks the satellite accounting rule:
// one uplink byte charge per frame, message counter advanced per
// contained update, and the batch counters feeding the average-batch-size
// metric.
func TestHandleUpdateBatchAccounting(t *testing.T) {
	e := newEngine(t, nil)
	register(t, e, 1, wire.StrategyMWPSR)
	register(t, e, 2, wire.StrategyMWPSR)
	b := wire.UpdateBatch{Updates: []wire.PositionUpdate{
		{User: 1, Seq: 1, Pos: geom.Pt(3000, 3000)},
		{User: 1, Seq: 2, Pos: geom.Pt(3010, 3000)},
		{User: 2, Seq: 1, Pos: geom.Pt(4000, 4000)},
	}}
	reply, err := e.HandleUpdateBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	sn := e.Metrics().Snapshot()
	if got, want := sn.UplinkBytes, uint64(wire.SizeUpdateBatch(3)); got != want {
		t.Errorf("uplink bytes = %d, want one frame charge %d", got, want)
	}
	if sn.UplinkMessages != 3 {
		t.Errorf("uplink messages = %d, want 3", sn.UplinkMessages)
	}
	if sn.UpdateBatches != 1 || sn.BatchedUpdates != 3 {
		t.Errorf("batch counters = %d/%d, want 1/3", sn.UpdateBatches, sn.BatchedUpdates)
	}
	if got := sn.AvgBatchSize(); got != 3 {
		t.Errorf("avg batch size = %v, want 3", got)
	}
	var downlink uint64
	var msgs int
	for _, ent := range reply.Entries {
		for _, m := range ent.Msgs {
			downlink += uint64(wire.EncodedSize(m))
			msgs++
		}
	}
	if sn.DownlinkBytes != downlink || sn.DownlinkMessages != uint64(msgs) {
		t.Errorf("downlink = %d bytes/%d msgs, reply holds %d/%d",
			sn.DownlinkBytes, sn.DownlinkMessages, downlink, msgs)
	}
}

// TestHandleUpdateBatchRejectsInvalid: one bad position rejects the whole
// frame before any state changes.
func TestHandleUpdateBatchRejectsInvalid(t *testing.T) {
	e := newEngine(t, nil)
	a1, _ := installBatchAlarms(t, e)
	register(t, e, 1, wire.StrategyMWPSR)
	bad := wire.UpdateBatch{Updates: []wire.PositionUpdate{
		{User: 1, Seq: 1, Pos: geom.Pt(500, 500)}, // would fire a1
		{User: 1, Seq: 2, Pos: geom.Pt(1e308, 0)}, // far outside the universe
	}}
	if _, err := e.HandleUpdateBatch(bad); err == nil {
		t.Fatal("hostile batch accepted")
	}
	if e.Registry().Fired(a1, 1) {
		t.Error("rejected batch mutated trigger state")
	}
	if sn := e.Metrics().Snapshot(); sn.UpdateBatches != 0 {
		t.Error("rejected batch charged uplink")
	}
	if _, err := e.HandleUpdateBatch(wire.UpdateBatch{}); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

// TestHandleUpdateScratchMatchesHandleUpdate: the zero-alloc entry point
// must produce byte-identical responses to HandleUpdate on a twin engine.
func TestHandleUpdateScratchMatchesHandleUpdate(t *testing.T) {
	plain := newEngine(t, nil)
	scratch := newEngine(t, nil)
	installBatchAlarms(t, plain)
	installBatchAlarms(t, scratch)
	for _, e := range []*Engine{plain, scratch} {
		register(t, e, 1, wire.StrategyMWPSR)
		register(t, e, 2, wire.StrategySafePeriod)
	}
	sc := NewUpdateScratch()
	path := []geom.Point{geom.Pt(3000, 3000), geom.Pt(2900, 3000), geom.Pt(500, 500), geom.Pt(520, 510)}
	for i, p := range path {
		for u := uint64(1); u <= 2; u++ {
			upd := wire.PositionUpdate{User: u, Seq: uint32(i + 1), Pos: p}
			want, err := plain.HandleUpdate(upd)
			if err != nil {
				t.Fatal(err)
			}
			got, err := scratch.HandleUpdateScratch(upd, sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("step %d user %d: %d msgs, want %d", i, u, len(got), len(want))
			}
			for k := range got {
				if !bytes.Equal(wire.Encode(got[k]), wire.Encode(want[k])) {
					t.Errorf("step %d user %d msg %d: %v != %v", i, u, k, got[k], want[k])
				}
			}
		}
	}
}

// TestHandleUpdateScratchZeroAlloc is the acceptance gate for the
// zero-alloc MWPSR steady path: once the scratch is warm, a position
// update that fires nothing must not allocate at all.
func TestHandleUpdateScratchZeroAlloc(t *testing.T) {
	e := newEngine(t, nil)
	// Alarms exist (the index is non-trivial) but are far from the
	// client's wander area, so the steady state never fires.
	installBatchAlarms(t, e)
	register(t, e, 1, wire.StrategyMWPSR)
	sc := NewUpdateScratch()
	seq := uint32(0)
	step := func() {
		seq++
		p := geom.Pt(3000+float64(seq%8)*10, 3000)
		if _, err := e.HandleUpdateScratch(wire.PositionUpdate{User: 1, Seq: seq, Pos: p}, sc); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		step() // warm the scratch, heading tracker and metric path
	}
	if got := testing.AllocsPerRun(200, step); got != 0 {
		t.Errorf("steady-state MWPSR update allocates %.2f/op, want 0", got)
	}
}
