package client

import (
	"math/rand"

	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/transport"
	"github.com/sabre-geo/sabre/internal/wire"
)

// This file implements the fault-tolerant session layer above Client
// (PROTOCOL.md "Sessions"). A Session owns the connection lifecycle —
// Hello/Resume enrollment, heartbeat dead-peer detection, reconnect with
// exponential backoff and jitter — and the delivery guarantees: position
// reports that could carry a trigger are queued until the server provably
// processed them, and alarm firings are acknowledged so the server can
// stop redelivering. While disconnected the client degrades gracefully,
// evaluating its last safe region locally (sound for static alarms) and
// queuing reports for redelivery.
//
// The machine is tick-driven, not clock-driven: the owner calls Step once
// per position sample. That makes it byte-for-byte deterministic under
// the simulator's scripted fault schedules while mapping directly onto
// wall-clock ticks in cmd/alarmclient.

// Dialer opens a fresh connection to the server. The session calls it on
// every (re)connect attempt.
type Dialer func() (transport.Conn, error)

// SessionConfig tunes the session state machine. Zero values select the
// defaults noted on each field.
type SessionConfig struct {
	// MaxHeight is the PBSR capability declared in Hello.
	MaxHeight uint8
	// HeartbeatEvery is the idle ticks after the last outbound message
	// before a heartbeat goes out (default 8).
	HeartbeatEvery int
	// DeadAfterTicks without any inbound message declares the link dead
	// and forces a reconnect (default 25).
	DeadAfterTicks int
	// ResendEvery is the tick interval between resends of an
	// unacknowledged queued report (default 5, matching the plain
	// client's resend timeout).
	ResendEvery int
	// BackoffBase and BackoffMax bound the exponential reconnect backoff
	// in ticks (defaults 2 and 16).
	BackoffBase, BackoffMax int
	// JitterSeed seeds the deterministic backoff jitter.
	JitterSeed int64
	// MaxQueue bounds the offline report queue; the oldest reports are
	// evicted (and counted) when it overflows (default 512).
	MaxQueue int
	// Batch coalesces all position reports of one tick (the fresh report
	// plus any resends) into a single UpdateBatch frame, charged on the
	// uplink once. Responses arrive as a BatchReply and dispatch through
	// the normal handlers, so delivery semantics are unchanged.
	Batch bool
}

func (c *SessionConfig) fillDefaults() {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 8
	}
	if c.DeadAfterTicks <= 0 {
		c.DeadAfterTicks = 25
	}
	if c.ResendEvery <= 0 {
		c.ResendEvery = resendAfterTicks
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 2
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = 16
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 512
	}
}

// queuedReport is a position report the server has not provably
// processed yet.
type queuedReport struct {
	msg      wire.PositionUpdate
	lastSent int // tick of the last transmission attempt
}

// Session drives one Client over an unreliable connection.
type Session struct {
	c    *Client
	cfg  SessionConfig
	dial Dialer
	met  *metrics.Client
	rng  *rand.Rand

	// DialTo, when set, lets the session follow wire.Redirect frames
	// (cluster shard handoff): after a redirect, reconnects dial the
	// redirect address through DialTo instead of the default Dialer.
	DialTo func(addr string) (transport.Conn, error)
	// redirectAddr is the address of the shard the server last redirected
	// us to; empty until the first Redirect.
	redirectAddr string
	// epoch is the highest partition-map epoch seen in a Redirect. A
	// redirect carrying an older epoch is ignored as stale — the shard
	// that sent it was behind the map; the current owner re-redirects
	// with the live epoch if we really are misplaced.
	epoch uint64

	conn      transport.PollingConn
	connected bool
	// established turns true when the server's Resume confirms our Hello.
	// Until then no reports, resends or acks go out: an update processed
	// before the Hello would enroll us server-side as an unreliable
	// periodic client, silently forfeiting the exactly-once guarantee.
	established bool
	helloTick   int    // tick the last unconfirmed Hello went out
	token       uint64 // resume token minted by the server, 0 before first Resume
	resumed     bool   // last Hello was answered with Resumed=true

	lastInTick   int // last tick any inbound message arrived
	lastOutTick  int // last tick any outbound message was sent
	nextDialTick int
	backoff      int

	queue      []queuedReport
	ackPending []uint64 // fired alarm IDs to acknowledge
	batchBuf   []wire.PositionUpdate
	hbNonce    uint32

	// OnFired, when set, is invoked with the newly delivered (deduplicated)
	// alarm IDs.
	OnFired func(ids []uint64)
}

// NewSession wraps c in a session that connects through dial. The session
// starts disconnected; the first Step dials.
func NewSession(c *Client, dial Dialer, cfg SessionConfig, met *metrics.Client) *Session {
	cfg.fillDefaults()
	return &Session{
		c:           c,
		cfg:         cfg,
		dial:        dial,
		met:         met,
		rng:         rand.New(rand.NewSource(cfg.JitterSeed)),
		lastInTick:  -1,
		lastOutTick: -1,
	}
}

// Client returns the wrapped monitoring client.
func (s *Session) Client() *Client { return s.c }

// Connected reports whether the session currently holds a live link.
func (s *Session) Connected() bool { return s.connected }

// Resumed reports whether the most recent connection resumed the previous
// server-side session rather than starting fresh.
func (s *Session) Resumed() bool { return s.resumed }

// QueueLen returns the number of reports awaiting server confirmation.
func (s *Session) QueueLen() int { return len(s.queue) }

// Step advances the session one tick: processes inbound messages,
// maintains the link (reconnect, heartbeat, dead-peer detection),
// evaluates the position against the client's monitoring state, and
// queues/sends a report when safety cannot be proven.
func (s *Session) Step(tick int, pos geom.Point) {
	s.drainInbound(tick)
	s.maintainLink(tick)

	if !s.c.SafeNow(tick, pos) {
		rep := s.c.Report(tick, pos)
		s.enqueue(tick, *rep)
	}
	s.flush(tick)
	s.flushBatch(tick)
}

// Quiesce runs a maintenance-only tick: inbound processing, link upkeep
// and queue/ack flushing, without generating a new report. The fault
// simulator uses it after the trace ends so in-flight reports, firings
// and acks settle to a quiescent state.
func (s *Session) Quiesce(tick int) {
	s.drainInbound(tick)
	s.maintainLink(tick)
	s.flush(tick)
	s.flushBatch(tick)
}

// drainInbound applies every waiting message. A receive error tears the
// link down; the next Step reconnects after backoff.
func (s *Session) drainInbound(tick int) {
	if !s.connected {
		return
	}
	for s.connected {
		m, ok, err := s.conn.TryRecv()
		if err != nil {
			s.disconnect(tick)
			return
		}
		if !ok {
			return
		}
		s.lastInTick = tick
		// A handler may drop the link (a Redirect closes it to re-dial
		// elsewhere); the loop condition stops the drain then.
		s.handleInbound(tick, m)
	}
}

func (s *Session) handleInbound(tick int, m wire.Message) {
	// Any response seq proves the server processed that report: every
	// trigger it caused is in the server's pending set (reliable sessions)
	// and will reach us, so the queued report has done its job.
	if seq, ok := wire.SeqOf(m); ok && seq != 0 {
		s.unqueue(seq)
	}
	switch v := m.(type) {
	case wire.Resume:
		s.token = v.Token
		s.resumed = v.Resumed
		if !s.established {
			s.established = true
			// The session is confirmed: replay every queued report now.
			for i := range s.queue {
				if !s.connected {
					break
				}
				if s.stageReport(tick, s.queue[i].msg) {
					s.queue[i].lastSent = tick
					s.met.RedeliveredReports++
				}
			}
		}
		return
	case wire.Heartbeat:
		return // echo; lastInTick already refreshed
	case wire.BatchReply:
		// Per-update responses to an UpdateBatch: dispatch each inner
		// message through the normal handlers. The codec rejects nested
		// batch frames, so this cannot recurse.
		for _, ent := range v.Entries {
			for _, im := range ent.Msgs {
				if !s.connected {
					return
				}
				s.handleInbound(tick, im)
			}
		}
		return
	case wire.Redirect:
		// Shard handoff: our session moved to another server. Adopt the
		// token it minted for us, drop this link and dial the new address
		// immediately (no backoff — the redirect is an instruction, not a
		// failure). Queued reports replay after the new shard's Resume.
		if s.DialTo == nil || v.Addr == "" {
			return // not cluster-aware; keep the current link
		}
		if v.Epoch != 0 && v.Epoch < s.epoch {
			s.met.StaleRedirects++
			return // older map than we've already followed
		}
		if v.Epoch > s.epoch {
			s.epoch = v.Epoch
		}
		s.token = v.Token
		s.redirectAddr = v.Addr
		if s.conn != nil {
			s.conn.Close()
			s.conn = nil
		}
		s.connected = false
		s.established = false
		s.backoff = 0
		s.nextDialTick = tick
		s.met.Redirects++
		return
	case wire.AlarmFired:
		before := len(s.c.fired)
		_ = s.c.Handle(tick, v)
		fresh := s.c.fired[before:]
		// Acknowledge everything delivered — including redeliveries we
		// deduplicated, or the server would retry them forever.
		s.ackPending = append(s.ackPending, v.Alarms...)
		if len(fresh) > 0 && s.OnFired != nil {
			s.OnFired(fresh)
		}
		return
	}
	_ = s.c.Handle(tick, m)
}

// maintainLink reconnects when due, detects dead peers, and heartbeats on
// idle links.
func (s *Session) maintainLink(tick int) {
	if s.connected {
		if tick-s.lastInTick >= s.cfg.DeadAfterTicks {
			s.disconnect(tick)
		} else if tick-s.lastOutTick >= s.cfg.HeartbeatEvery {
			s.hbNonce++
			if s.sendOn(tick, wire.Heartbeat{Nonce: s.hbNonce}) {
				s.met.HeartbeatsSent++
			}
		}
		return
	}
	if tick < s.nextDialTick {
		return
	}
	conn, err := s.dialNext()
	if err != nil {
		s.backoffMore(tick)
		return
	}
	s.conn = transport.Poller(conn)
	if err := s.conn.Send(s.helloMsg()); err != nil {
		s.conn.Close()
		s.conn = nil
		s.backoffMore(tick)
		return
	}
	s.connected = true
	s.established = false
	s.helloTick = tick
	s.backoff = 0
	s.lastInTick = tick // grace: dead-peer countdown restarts now
	s.lastOutTick = tick
	s.met.Reconnects++
	// The queue replays when the Resume confirms the session.
}

// dialNext opens the next connection: the last redirect target when one
// is known (and DialTo is set), the default Dialer otherwise. A dead
// redirect target (its shard may have been retired by a merge) falls
// back to the default Dialer and stops being preferred — whichever
// shard answers will re-redirect us if we land wrong.
func (s *Session) dialNext() (transport.Conn, error) {
	if s.redirectAddr != "" && s.DialTo != nil {
		conn, err := s.DialTo(s.redirectAddr)
		if err == nil {
			return conn, nil
		}
		s.redirectAddr = ""
	}
	return s.dial()
}

func (s *Session) helloMsg() wire.Hello {
	return wire.Hello{
		User:      s.c.User(),
		Token:     s.token,
		Strategy:  s.c.Strategy(),
		MaxHeight: s.cfg.MaxHeight,
	}
}

func (s *Session) disconnect(tick int) {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.connected = false
	s.established = false
	s.backoffMore(tick)
}

// backoffMore schedules the next dial attempt with exponential backoff
// plus deterministic jitter in [0, backoff).
func (s *Session) backoffMore(tick int) {
	if s.backoff == 0 {
		s.backoff = s.cfg.BackoffBase
	} else {
		s.backoff *= 2
		if s.backoff > s.cfg.BackoffMax {
			s.backoff = s.cfg.BackoffMax
		}
	}
	s.nextDialTick = tick + s.backoff + s.rng.Intn(s.backoff)
}

// enqueue adds a report to the redelivery queue (evicting the oldest on
// overflow) and transmits it when the link is up.
func (s *Session) enqueue(tick int, rep wire.PositionUpdate) {
	if len(s.queue) >= s.cfg.MaxQueue {
		drop := len(s.queue) - s.cfg.MaxQueue + 1
		s.queue = append(s.queue[:0], s.queue[drop:]...)
		s.met.DroppedReports += uint64(drop)
	}
	s.queue = append(s.queue, queuedReport{msg: rep, lastSent: tick})
	if s.connected && s.established {
		s.stageReport(tick, rep)
	}
}

// unqueue removes the report with the given seq, if still queued.
func (s *Session) unqueue(seq uint32) {
	for i := range s.queue {
		if s.queue[i].msg.Seq == seq {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// flush resends overdue queued reports and pushes out pending FiredAcks.
// On an unconfirmed session it instead retries the Hello: a lost Hello or
// Resume must not stall the handshake until dead-peer detection fires.
func (s *Session) flush(tick int) {
	if !s.connected {
		return
	}
	if !s.established {
		if tick-s.helloTick >= s.cfg.ResendEvery {
			if s.sendOn(tick, s.helloMsg()) {
				s.helloTick = tick
			}
		}
		return
	}
	for i := range s.queue {
		if !s.connected {
			return
		}
		if tick-s.queue[i].lastSent >= s.cfg.ResendEvery {
			if s.stageReport(tick, s.queue[i].msg) {
				s.queue[i].lastSent = tick
				s.met.RedeliveredReports++
			}
		}
	}
	if s.connected && len(s.ackPending) > 0 {
		if s.sendOn(tick, wire.FiredAck{Alarms: s.ackPending}) {
			// A lost ack is harmless: the server redelivers, we re-ack.
			s.ackPending = s.ackPending[:0]
		}
	}
}

// stageReport puts rep on its way to the server: staged into this tick's
// UpdateBatch when batching is on (flushBatch frames it), transmitted
// immediately otherwise. Staging counts as sent for resend bookkeeping; a
// frame lost later is indistinguishable from a lost packet and the resend
// machinery recovers either way.
func (s *Session) stageReport(tick int, rep wire.PositionUpdate) bool {
	if !s.cfg.Batch {
		return s.sendOn(tick, rep)
	}
	s.batchBuf = append(s.batchBuf, rep)
	return true
}

// flushBatch sends the tick's staged reports as one UpdateBatch frame.
// The Updates slice is freshly allocated per frame: an in-process
// transport.Pipe retains the message un-serialized, so the staging buffer
// must never back a frame in flight.
func (s *Session) flushBatch(tick int) {
	if len(s.batchBuf) == 0 {
		return
	}
	if !s.connected || !s.established {
		// Dropped, not lost: every staged report is still queued and
		// replays after the next Resume.
		s.batchBuf = s.batchBuf[:0]
		return
	}
	b := wire.UpdateBatch{Updates: append([]wire.PositionUpdate(nil), s.batchBuf...)}
	s.batchBuf = s.batchBuf[:0]
	if s.sendOn(tick, b) {
		s.met.BatchesSent++
		s.met.BatchedReports += uint64(len(b.Updates))
	}
}

// sendOn transmits one message, tearing the link down on error. Reports
// whether the send succeeded.
func (s *Session) sendOn(tick int, m wire.Message) bool {
	if err := s.conn.Send(m); err != nil {
		s.disconnect(tick)
		return false
	}
	s.lastOutTick = tick
	return true
}
