package cluster

import "fmt"

// BalancerConfig tunes the load-adaptive repartitioner. Zero values
// disable the corresponding trigger.
type BalancerConfig struct {
	// SplitAbove splits a shard whose load score (resident sessions plus
	// position reports received since the last Step) exceeds it.
	SplitAbove int
	// MergeBelow merges sibling shards whose combined load score falls
	// below it.
	MergeBelow int
	// MaxShards caps the live shard count; splits stop at the cap.
	// Zero means no cap.
	MaxShards int
	// MinShards floors the live shard count; merges stop at the floor.
	// Zero means a floor of 1.
	MinShards int
}

// Balancer drives split-hot / merge-cold transitions from per-shard
// load. It observes two signals the paper's workload makes non-uniform:
// resident sessions (clients parked on a shard) and update volume
// (reports served since the previous observation). Call Step
// periodically — each call performs at most one split and one merge, so
// the map changes gradually and every transition's migration cost is
// paid before the next is considered.
type Balancer struct {
	cl  *Cluster
	cfg BalancerConfig

	// lastUplink remembers each shard's uplink-message counter at the
	// previous Step; the delta is the shard's update volume this window.
	lastUplink map[int]uint64
}

// NewBalancer builds a balancer over cl.
func NewBalancer(cl *Cluster, cfg BalancerConfig) (*Balancer, error) {
	if cfg.SplitAbove < 0 || cfg.MergeBelow < 0 {
		return nil, fmt.Errorf("cluster: negative balancer thresholds %+v", cfg)
	}
	if cfg.SplitAbove > 0 && cfg.MergeBelow >= cfg.SplitAbove {
		return nil, fmt.Errorf("cluster: merge threshold %d must stay below split threshold %d (hysteresis)", cfg.MergeBelow, cfg.SplitAbove)
	}
	return &Balancer{cl: cl, cfg: cfg, lastUplink: make(map[int]uint64)}, nil
}

// loadScore is sessions + uplink delta: both signals a hotspot raises.
func (b *Balancer) loadScore(shard int) (int, bool) {
	eng := b.cl.Engine(shard)
	if eng == nil {
		return 0, false
	}
	up := eng.Metrics().Snapshot().UplinkMessages
	delta := up - b.lastUplink[shard]
	b.lastUplink[shard] = up
	return eng.ClientCount() + int(delta), true
}

// Step observes every live shard once and performs at most one split
// (of the hottest shard above SplitAbove) and one merge (of the coldest
// mergeable sibling pair below MergeBelow). It returns a human-readable
// action log, empty when the map was left alone.
func (b *Balancer) Step() ([]string, error) {
	pm := b.cl.PartitionMap()
	scores := make(map[int]int)
	for _, s := range pm.Shards() {
		if sc, ok := b.loadScore(s); ok {
			scores[s] = sc
		}
	}
	var actions []string

	if b.cfg.SplitAbove > 0 && (b.cfg.MaxShards == 0 || pm.N() < b.cfg.MaxShards) {
		hottest, hot, found := 0, 0, false
		for _, s := range pm.Shards() {
			if sc, ok := scores[s]; ok && sc > b.cfg.SplitAbove && (!found || sc > hot) {
				hottest, hot, found = s, sc, true
			}
		}
		if found {
			newShard, err := b.cl.SplitShard(hottest)
			if err != nil {
				return actions, err
			}
			actions = append(actions, fmt.Sprintf("split shard %d (load %d) -> new shard %d", hottest, hot, newShard))
			pm = b.cl.PartitionMap()
		}
	}

	minShards := b.cfg.MinShards
	if minShards < 1 {
		minShards = 1
	}
	if b.cfg.MergeBelow > 0 && pm.N() > minShards {
		var bestPair [2]int
		bestLoad, found := 0, false
		for _, pair := range pm.MergeablePairs() {
			sa, oka := scores[pair[0]]
			sb, okb := scores[pair[1]]
			if !oka || !okb {
				continue // a down shard cannot migrate its sessions
			}
			if combined := sa + sb; combined < b.cfg.MergeBelow && (!found || combined < bestLoad) {
				bestPair, bestLoad, found = pair, combined, true
			}
		}
		if found {
			if err := b.cl.MergeShards(bestPair[0], bestPair[1]); err != nil {
				return actions, err
			}
			actions = append(actions, fmt.Sprintf("merged shard %d into %d (combined load %d)", bestPair[1], bestPair[0], bestLoad))
		}
	}
	return actions, nil
}
