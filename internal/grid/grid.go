// Package grid implements the uniform grid overlaid on the Universe of
// Discourse (paper §2.2). The grid focuses safe region computation on the
// alarms in the vicinity of a mobile client: safe regions are always
// contained in the client's current grid cell, and only alarms intersecting
// that cell participate in the computation.
//
// Cell sizes are specified by area (the paper sweeps 0.4–10 km²); cells are
// square. Cells are identified by (column, row) packed into a CellID.
package grid

import (
	"fmt"
	"math"

	"github.com/sabre-geo/sabre/internal/geom"
)

// CellID identifies a grid cell: the column in the high 32 bits and the row
// in the low 32 bits.
type CellID uint64

// MakeCellID packs a (col, row) pair. col and row must be non-negative.
func MakeCellID(col, row int) CellID {
	return CellID(uint64(uint32(col))<<32 | uint64(uint32(row)))
}

// Col returns the cell column.
func (id CellID) Col() int { return int(uint32(id >> 32)) }

// Row returns the cell row.
func (id CellID) Row() int { return int(uint32(id)) }

// String implements fmt.Stringer.
func (id CellID) String() string { return fmt.Sprintf("cell(%d,%d)", id.Col(), id.Row()) }

// Grid is a uniform square-cell decomposition of a rectangular universe.
type Grid struct {
	universe   geom.Rect
	cellSide   float64
	cols, rows int
}

// New creates a grid over universe with cells of the given area in square
// metres. Cells on the top/right fringe may extend past the universe so
// that every point of the universe belongs to exactly one cell. It returns
// an error for a degenerate universe or non-positive cell area.
func New(universe geom.Rect, cellAreaM2 float64) (*Grid, error) {
	if universe.Empty() {
		return nil, fmt.Errorf("grid: empty universe %v", universe)
	}
	if cellAreaM2 <= 0 {
		return nil, fmt.Errorf("grid: non-positive cell area %v", cellAreaM2)
	}
	side := math.Sqrt(cellAreaM2)
	cols := int(math.Ceil(universe.Width() / side))
	rows := int(math.Ceil(universe.Height() / side))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{universe: universe, cellSide: side, cols: cols, rows: rows}, nil
}

// NewWithCellArea is like New but takes the cell area in km², matching the
// units of the paper's figures.
func NewWithCellArea(universe geom.Rect, cellAreaKM2 float64) (*Grid, error) {
	return New(universe, cellAreaKM2*1e6)
}

// Universe returns the covered region.
func (g *Grid) Universe() geom.Rect { return g.universe }

// CellSide returns the side length of a cell in metres.
func (g *Grid) CellSide() float64 { return g.cellSide }

// CellArea returns the area of a cell in square metres.
func (g *Grid) CellArea() float64 { return g.cellSide * g.cellSide }

// Dims returns the number of columns and rows.
func (g *Grid) Dims() (cols, rows int) { return g.cols, g.rows }

// NumCells returns the total number of cells.
func (g *Grid) NumCells() int { return g.cols * g.rows }

// Locate returns the cell containing p. Points outside the universe are
// clamped to the nearest cell, so a client that drifts off the map edge
// still has a well-defined current cell.
func (g *Grid) Locate(p geom.Point) CellID {
	col := int(math.Floor((p.X - g.universe.MinX) / g.cellSide))
	row := int(math.Floor((p.Y - g.universe.MinY) / g.cellSide))
	col = clampInt(col, 0, g.cols-1)
	row = clampInt(row, 0, g.rows-1)
	return MakeCellID(col, row)
}

// CellRect returns the rectangle of the given cell.
func (g *Grid) CellRect(id CellID) geom.Rect {
	x := g.universe.MinX + float64(id.Col())*g.cellSide
	y := g.universe.MinY + float64(id.Row())*g.cellSide
	return geom.Rect{MinX: x, MinY: y, MaxX: x + g.cellSide, MaxY: y + g.cellSide}
}

// Contains reports whether id is a valid cell of this grid.
func (g *Grid) Contains(id CellID) bool {
	return id.Col() >= 0 && id.Col() < g.cols && id.Row() >= 0 && id.Row() < g.rows
}

// Neighbors appends to dst the IDs of the up-to-8 cells adjacent to id that
// exist in the grid, and returns the extended slice.
func (g *Grid) Neighbors(id CellID, dst []CellID) []CellID {
	for dc := -1; dc <= 1; dc++ {
		for dr := -1; dr <= 1; dr++ {
			if dc == 0 && dr == 0 {
				continue
			}
			c, r := id.Col()+dc, id.Row()+dr
			if c >= 0 && c < g.cols && r >= 0 && r < g.rows {
				dst = append(dst, MakeCellID(c, r))
			}
		}
	}
	return dst
}

// CellsIntersecting appends to dst the IDs of all cells intersecting w and
// returns the extended slice.
func (g *Grid) CellsIntersecting(w geom.Rect, dst []CellID) []CellID {
	w = w.Intersect(geom.Rect{
		MinX: g.universe.MinX,
		MinY: g.universe.MinY,
		MaxX: g.universe.MinX + float64(g.cols)*g.cellSide,
		MaxY: g.universe.MinY + float64(g.rows)*g.cellSide,
	})
	if !w.Valid() {
		return dst
	}
	c0 := clampInt(int(math.Floor((w.MinX-g.universe.MinX)/g.cellSide)), 0, g.cols-1)
	c1 := clampInt(int(math.Floor((w.MaxX-g.universe.MinX)/g.cellSide)), 0, g.cols-1)
	r0 := clampInt(int(math.Floor((w.MinY-g.universe.MinY)/g.cellSide)), 0, g.rows-1)
	r1 := clampInt(int(math.Floor((w.MaxY-g.universe.MinY)/g.cellSide)), 0, g.rows-1)
	for c := c0; c <= c1; c++ {
		for r := r0; r <= r1; r++ {
			dst = append(dst, MakeCellID(c, r))
		}
	}
	return dst
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
