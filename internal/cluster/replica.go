package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/server"
	"github.com/sabre-geo/sabre/internal/store"
)

// Per-shard WAL replication and follower promotion. Each shard's primary
// store streams its appended records (and snapshot generations) through
// an in-process replication sink to a Replicator, which fans the frames
// out to one or more FollowerLogs — durable mirrors whose disk layout is
// byte-identical to a primary's. When the failure detector sees a
// primary silent for PromoteAfter replication ticks, the best-caught-up
// follower is sealed and reopened through the ordinary recovery path as
// the shard's new primary: the partition-map epoch bumps so clients
// re-sync, and the shard's fencing term bumps so a deposed primary that
// was merely partitioned (not dead) has every later append rejected
// with store.ErrFenced. See DESIGN.md "Replication and failover".

// replBufferCap bounds each follower's asynchronous frame buffer. A
// follower that falls further behind than this is marked for a snapshot
// resync instead of growing the buffer without bound — backpressure by
// resync, the cheap policy when snapshots are proportional to state.
const replBufferCap = 1024

// replFollower is one follower attachment: its durable log plus the
// bounded buffer of frames awaiting the next Pump (async mode only).
type replFollower struct {
	log *store.FollowerLog
	buf []store.ReplFrame
	// resync marks the follower for a snapshot resync on the next Pump:
	// set when the buffer overflowed, when apply hit a stream gap, or
	// when a new primary incarnation attached (its positions restart).
	resync bool
}

// Replicator owns one shard's replication fan-out: the primary's sink
// feeds it, followers drain from it, and its term cell is the shard's
// fencing authority (the primary's termSource reads it, so bumping the
// term here fences a deposed primary immediately and atomically).
type Replicator struct {
	shard   int
	ackMode bool
	met     *metrics.Cluster
	term    atomic.Uint64

	mu        sync.Mutex
	followers []*replFollower
	// streamPos is the highest record position the primary has emitted —
	// the reference point for follower lag.
	streamPos uint64
}

// NewReplicator builds the replicator for one shard. ack selects
// synchronous mode: every append applies to every follower before the
// primary's Append returns (zero follower lag, higher write latency).
func NewReplicator(shard int, ack bool, met *metrics.Cluster) *Replicator {
	return &Replicator{shard: shard, ackMode: ack, met: met}
}

// Term returns the shard's current fencing term. The primary store's
// termSource points here.
func (r *Replicator) Term() uint64 { return r.term.Load() }

// AttachPrimary wires a primary store incarnation into the replicator:
// the store adopts the shard term, reads the shared term cell for
// fencing, and streams every acknowledged record into the sink. Any
// existing followers are marked for a snapshot resync — a new
// incarnation's record positions restart from its recovery point, so
// only a fresh snapshot re-aligns the stream.
func (r *Replicator) AttachPrimary(st *store.Store) {
	st.SetTerm(r.term.Load())
	st.SetTermSource(r.Term)
	st.SetReplSink(r.sink)
	r.mu.Lock()
	for _, f := range r.followers {
		f.resync = true
		f.buf = nil
	}
	r.streamPos = 0
	r.mu.Unlock()
}

// sink receives the frame batch of one acknowledged group commit (or a
// one-frame batch per checkpoint). It runs with the store's mutex held
// (lock order: store.mu → Replicator.mu → FollowerLog.mu), before any
// write in the group can release its response — so in ack mode every
// acknowledged record is already applied to every follower via one
// coalesced follower write per group, and in async mode the whole batch
// is buffered here, where it survives the primary's death and is
// drained before any promotion.
func (r *Replicator) sink(frames []store.ReplFrame) {
	if len(frames) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p := frames[len(frames)-1].Pos; p > r.streamPos {
		r.streamPos = p
	}
	for _, fl := range r.followers {
		if fl.resync {
			continue // a pending resync supersedes individual frames
		}
		if r.ackMode {
			r.applyBatchLocked(fl, frames)
			continue
		}
		if len(fl.buf)+len(frames) > replBufferCap {
			// Backpressure: drop the buffer and resync from a snapshot.
			fl.buf = nil
			fl.resync = true
			continue
		}
		fl.buf = append(fl.buf, frames...)
	}
}

// applyBatch applies one frame batch to a follower log and books the
// streamed-frame metrics; the error is the batch's first failure (its
// valid prefix has been applied).
func (r *Replicator) applyBatch(log *store.FollowerLog, frames []store.ReplFrame) error {
	recs, snaps, err := log.ApplyBatch(frames)
	if recs > 0 {
		r.met.AddReplRecordsStreamed(uint64(recs))
	}
	for i := 0; i < snaps; i++ {
		r.met.AddReplSnapshotStreamed()
	}
	return err
}

// applyBatchLocked is applyBatch under r.mu, folding a failure into the
// follower's resync flag.
func (r *Replicator) applyBatchLocked(fl *replFollower, frames []store.ReplFrame) {
	if err := r.applyBatch(fl.log, frames); err != nil {
		fl.resync = true
	}
}

// AddFollower opens a fresh follower log under dir and attaches it. The
// snapshot bootstrap runs inside primary.Bootstrap — with the store
// lock held — and the follower registers before the lock releases, so
// no record frame can fall between the snapshot and the subscription.
func (r *Replicator) AddFollower(primary *store.Store, dir string, opts store.Options) error {
	fl, err := store.OpenFollower(dir, opts)
	if err != nil {
		return err
	}
	err = primary.Bootstrap(func(snap store.ReplFrame) error {
		if _, err := fl.Apply(snap); err != nil {
			return err
		}
		r.mu.Lock()
		r.followers = append(r.followers, &replFollower{log: fl})
		if snap.Pos > r.streamPos {
			r.streamPos = snap.Pos
		}
		r.mu.Unlock()
		return nil
	})
	if err != nil {
		fl.Close()
		return fmt.Errorf("cluster: shard %d follower: %w", r.shard, err)
	}
	r.met.AddReplSnapshotStreamed()
	return nil
}

// Pump drains each follower's buffered frames and snapshot-resyncs the
// ones marked for it, then beats a heartbeat frame (term refresh) to
// every follower. Called once per replication tick while the primary is
// alive. Buffered frames are swapped out under r.mu and applied outside
// it so a resync's Bootstrap (store.mu) never nests inside r.mu —
// preserving the store.mu → r.mu lock order the sink relies on.
func (r *Replicator) Pump(primary *store.Store) {
	type drain struct {
		fl     *replFollower
		frames []store.ReplFrame
		resync bool
	}
	r.mu.Lock()
	work := make([]drain, 0, len(r.followers))
	for _, fl := range r.followers {
		work = append(work, drain{fl: fl, frames: fl.buf, resync: fl.resync})
		fl.buf = nil
		fl.resync = false
	}
	r.mu.Unlock()

	hb := store.ReplFrame{Type: store.ReplHeartbeat, Term: r.term.Load()}
	for _, w := range work {
		needResync := w.resync
		if !needResync && len(w.frames) > 0 {
			// One coalesced follower write per drained buffer; a failure
			// applies the valid prefix and the snapshot resync covers the
			// rest.
			if err := r.applyBatch(w.fl.log, w.frames); err != nil {
				needResync = true
			}
		}
		if needResync {
			if err := r.resyncFollower(primary, w.fl); err != nil {
				r.mu.Lock()
				w.fl.resync = true // retry on the next tick
				r.mu.Unlock()
				continue
			}
		}
		_, _ = w.fl.log.Apply(hb)
	}
}

// resyncFollower re-seeds one follower from a fresh primary snapshot.
func (r *Replicator) resyncFollower(primary *store.Store, fl *replFollower) error {
	err := primary.Bootstrap(func(snap store.ReplFrame) error {
		_, err := fl.log.Apply(snap)
		return err
	})
	if err != nil {
		return err
	}
	r.met.AddReplSnapshotStreamed()
	return nil
}

// Promotable reports whether at least one follower has been seeded by a
// snapshot and could serve as the next primary.
func (r *Replicator) Promotable() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fl := range r.followers {
		if fl.log.Synced() {
			return true
		}
	}
	return false
}

// Promote fences the shard and returns the best follower's sealed log,
// ready for store.Open. Order matters: the term bumps FIRST, so a
// deposed primary that is still running (network partition, not death)
// can acknowledge nothing more from this instant; only then are the
// followers' buffered frames drained — capturing every write the old
// primary ever acknowledged — and the furthest-ahead synced follower
// chosen and sealed. The remaining followers are marked for resync
// against the new primary (whose record positions restart).
func (r *Replicator) Promote() (*store.FollowerLog, error) {
	r.term.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fl := range r.followers {
		if fl.resync {
			fl.buf = nil
			continue
		}
		// A gap mid-drain applies the valid prefix and flags the resync.
		r.applyBatchLocked(fl, fl.buf)
		fl.buf = nil
	}
	best := -1
	for i, fl := range r.followers {
		if !fl.log.Synced() {
			continue
		}
		if best < 0 || fl.log.Pos() > r.followers[best].log.Pos() {
			best = i
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("cluster: shard %d has no promotable follower", r.shard)
	}
	chosen := r.followers[best].log
	r.followers = append(r.followers[:best], r.followers[best+1:]...)
	for _, fl := range r.followers {
		fl.resync = true
		fl.buf = nil
	}
	if err := chosen.Seal(); err != nil {
		return nil, err
	}
	return chosen, nil
}

// Restore re-attaches a follower that Promote sealed and removed but
// whose promotion then failed (store open, engine boot, or pointer
// write): the log reopens for appends and rejoins the follower set
// with its synced state and position intact, so a later promotion
// attempt can retry from it instead of leaving the shard down with no
// promotable follower.
func (r *Replicator) Restore(fl *store.FollowerLog) error {
	if err := fl.Reopen(); err != nil {
		return err
	}
	r.mu.Lock()
	r.followers = append(r.followers, &replFollower{log: fl})
	r.mu.Unlock()
	return nil
}

// Shutdown seals every follower log (releasing file descriptors)
// without removing the directories — clean-close semantics.
func (r *Replicator) Shutdown() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fl := range r.followers {
		_ = fl.log.Seal()
	}
}

// Close seals and removes every follower log — the shard retired.
func (r *Replicator) Close() {
	r.mu.Lock()
	fls := r.followers
	r.followers = nil
	r.mu.Unlock()
	for _, fl := range fls {
		_ = fl.log.Close()
	}
}

// ReplicaStatus is one shard's replication health for ShardSnapshots.
type ReplicaStatus struct {
	// Term is the shard's current fencing term.
	Term uint64 `json:"term"`
	// Followers is the number of attached follower logs.
	Followers int `json:"followers"`
	// StreamPos is the primary's last emitted record position.
	StreamPos uint64 `json:"stream_pos"`
	// MinAcked is the least-caught-up follower's applied position; Lag is
	// StreamPos - MinAcked (how far the slowest follower trails).
	MinAcked uint64 `json:"min_acked"`
	Lag      uint64 `json:"lag"`
}

// Status snapshots the replicator's health counters.
func (r *Replicator) Status() ReplicaStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := ReplicaStatus{Term: r.term.Load(), Followers: len(r.followers), StreamPos: r.streamPos}
	for i, fl := range r.followers {
		p := fl.log.Pos()
		if i == 0 || p < st.MinAcked {
			st.MinAcked = p
		}
	}
	if st.Followers > 0 && st.StreamPos > st.MinAcked {
		st.Lag = st.StreamPos - st.MinAcked
	}
	return st
}

// FailureDetector is a missed-heartbeat detector over a deterministic
// integer clock: Beat records liveness at a tick, Suspect reports
// whether a shard has been silent for at least `after` ticks. The sim
// drives it with its tick counter; the server binary with an interval
// count — either way the promotion decision is reproducible.
type FailureDetector struct {
	mu       sync.Mutex
	lastBeat map[int]int
}

// Beat records that shard was seen alive at tick now.
func (fd *FailureDetector) Beat(shard, now int) {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if fd.lastBeat == nil {
		fd.lastBeat = make(map[int]int)
	}
	fd.lastBeat[shard] = now
}

// Suspect reports whether shard has missed heartbeats for >= after
// ticks. A shard never beaten is suspect immediately (it was expected).
func (fd *FailureDetector) Suspect(shard, now, after int) bool {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	last, ok := fd.lastBeat[shard]
	if !ok {
		return true
	}
	return now-last >= after
}

// Forget drops a shard from the detector (retired).
func (fd *FailureDetector) Forget(shard int) {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	delete(fd.lastBeat, shard)
}

// primaryPtrPath is the durable "which directory is this shard's
// primary" pointer. Promotion re-points a shard's authoritative store
// from DataDir/shard<i> to the promoted follower's directory; the
// pointer file (written via tmp + atomic rename) makes that re-pointing
// survive a full-process restart — New boots the shard from the
// pointed-at directory, which holds every acknowledged write.
func primaryPtrPath(dataDir string, shard int) string {
	return filepath.Join(dataDir, fmt.Sprintf("shard%d.primary", shard))
}

// writePrimaryPtr durably commits the shard's primary-directory pointer.
func writePrimaryPtr(dataDir string, shard int, dir string) error {
	path := primaryPtrPath(dataDir, shard)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cluster: primary pointer: %w", err)
	}
	if _, err = f.WriteString(dir); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cluster: primary pointer: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("cluster: primary pointer: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("cluster: primary pointer: %w", err)
	}
	return nil
}

// readPrimaryPtr reads a shard's primary-directory pointer; ok is false
// when no pointer exists or the pointed-at directory is gone.
func readPrimaryPtr(dataDir string, shard int) (string, bool) {
	data, err := os.ReadFile(primaryPtrPath(dataDir, shard))
	if err != nil || len(data) == 0 {
		return "", false
	}
	dir := string(data)
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return "", false
	}
	return dir, true
}

// replicator returns shard's replicator, nil when replication is off or
// the shard retired.
func (c *Cluster) replicator(shard int) *Replicator {
	c.repMu.Lock()
	defer c.repMu.Unlock()
	return c.reps[shard]
}

// enableReplication builds shard's replicator, attaches the live
// primary, and spawns cfg.Replicas follower logs.
func (c *Cluster) enableReplication(shard int) error {
	eng := c.Engine(shard)
	if eng == nil || eng.Store() == nil {
		return fmt.Errorf("cluster: shard %d: replication needs a live durable shard", shard)
	}
	rep := NewReplicator(shard, c.cfg.ReplAck, c.met)
	rep.AttachPrimary(eng.Store())
	c.repMu.Lock()
	c.reps[shard] = rep
	c.repMu.Unlock()
	for j := 0; j < c.cfg.Replicas; j++ {
		if err := c.addFollower(shard, rep, eng.Store()); err != nil {
			return err
		}
	}
	return nil
}

// scanReplSeq returns the next free follower-directory sequence: one
// past the highest shard<i>-r<seq> directory already under dataDir. The
// in-memory counter alone restarts at 0 with the process; after a
// promotion re-pointed a shard's primary to a follower directory, a
// re-allocation of that same name would hand it to OpenFollower — which
// wipes the directory — destroying the live primary's acknowledged
// writes. Seeding the counter past every directory ever allocated keeps
// the names never-reused across restarts too.
func scanReplSeq(dataDir string) int {
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		return 0
	}
	next := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var shard, seq int
		if n, _ := fmt.Sscanf(e.Name(), "shard%d-r%d", &shard, &seq); n == 2 && seq >= next {
			next = seq + 1
		}
	}
	return next
}

// addFollower attaches one more follower log to shard's replicator,
// under a never-reused directory name. A name that matches any slot's
// current primary directory is skipped outright — OpenFollower wipes
// its directory, so handing it a live primary's would destroy
// acknowledged writes; the guard is a last line of defence behind the
// durable seq scan.
func (c *Cluster) addFollower(shard int, rep *Replicator, st *store.Store) error {
	sl := c.slotList()
	var dir string
	for {
		c.repMu.Lock()
		seq := c.replSeq
		c.replSeq++
		c.repMu.Unlock()
		dir = filepath.Join(c.cfg.DataDir, fmt.Sprintf("shard%d-r%d", shard, seq))
		primary := false
		for _, s := range sl {
			if s.dir == dir {
				primary = true
				break
			}
		}
		if !primary {
			break
		}
	}
	return rep.AddFollower(st, dir, c.cfg.Store)
}

// dropReplication retires shard's replication: followers sealed and
// removed, failure detector forgets it. Used when a merge drain retires
// the shard for good.
func (c *Cluster) dropReplication(shard int) {
	c.repMu.Lock()
	rep := c.reps[shard]
	delete(c.reps, shard)
	c.repMu.Unlock()
	c.fd.Forget(shard)
	if rep != nil {
		rep.Close()
	}
}

// TickReplication advances the replication clock one beat: every live
// primary pumps its follower stream and refreshes the failure detector;
// a primary silent for cfg.PromoteAfter ticks whose replicator holds a
// promotable follower is failed over on the spot. now is a
// monotonically increasing tick count — the sim's tick loop or the
// server binary's interval ticker — so detection is deterministic.
func (c *Cluster) TickReplication(now int) {
	c.repMu.Lock()
	shards := make([]int, 0, len(c.reps))
	for s := range c.reps {
		shards = append(shards, s)
	}
	c.repMu.Unlock()
	sort.Ints(shards)
	for _, s := range shards {
		rep := c.replicator(s)
		if rep == nil {
			continue
		}
		if eng := c.Engine(s); eng != nil {
			if st := eng.Store(); st != nil && !st.Crashed() {
				rep.Pump(st)
				c.fd.Beat(s, now)
				continue
			}
			// A spontaneous WAL write failure kills the store but leaves
			// the dead engine attached (only KillShard/PartitionShard
			// detach). Detach it here so the promotion path — which
			// refuses to depose an attached primary — can fail the shard
			// over instead of skipping it forever.
			if c.slotList()[s].eng.CompareAndSwap(eng, nil) {
				c.met.AddShardCrash()
			}
		}
		if rep.Promotable() && c.fd.Suspect(s, now, c.cfg.PromoteAfter) {
			if err := c.PromoteFollower(s); err == nil {
				c.fd.Beat(s, now)
			}
		}
	}
}

// PromoteFollower fails shard over to its best follower: the shard term
// bumps (fencing any deposed primary still running), the follower's
// buffered frames drain, its log seals, and the ordinary recovery path
// (store.Open + NewDurable) reboots the shard from the follower's
// directory — which the durable primary pointer now names, so even a
// full-process restart boots from the promoted state. The partition-map
// epoch bumps and commits so clients holding stale Redirects re-sync,
// and a replacement follower spawns to restore the replica count.
func (c *Cluster) PromoteFollower(shard int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := c.replicator(shard)
	if rep == nil {
		return fmt.Errorf("cluster: shard %d is not replicated", shard)
	}
	if c.Engine(shard) != nil {
		return fmt.Errorf("cluster: shard %d primary is still attached", shard)
	}
	pm := c.part.Load()
	rect, live := pm.RectOf(shard)
	if !live {
		// A draining merge source is off the map but still owns sessions;
		// it fails over on its drain rectangle so the drain can resume.
		for _, d := range pm.Draining() {
			if d.Shard == shard {
				rect, live = d.Rect, true
				break
			}
		}
	}
	if !live {
		return fmt.Errorf("cluster: shard %d is retired", shard)
	}

	fl, err := rep.Promote()
	if err != nil {
		return err
	}
	// Promote sealed fl and removed it from the fan-out; if anything
	// below fails, the sealed log must rejoin the follower set (with its
	// data intact) or a retry finds no promotable follower and the shard
	// stays down for good with Replicas=1.
	st, state, info, err := store.Open(fl.Dir(), c.cfg.Store)
	if err != nil {
		_ = rep.Restore(fl)
		return fmt.Errorf("cluster: promote shard %d: %w", shard, err)
	}
	sc := c.cfg.Engine
	sc.Partition = rect
	eng, err := server.NewDurable(sc, st, state, info)
	if err != nil {
		_ = st.Close()
		_ = rep.Restore(fl)
		return fmt.Errorf("cluster: promote shard %d: %w", shard, err)
	}
	if err := writePrimaryPtr(c.cfg.DataDir, shard, fl.Dir()); err != nil {
		_ = st.Close()
		_ = rep.Restore(fl)
		return err
	}
	rep.AttachPrimary(st)

	sl := c.slotList()
	sl[shard].dir = fl.Dir()
	sl[shard].eng.Store(eng)
	// Epoch bump is the promotion's client-visible commit: Redirects and
	// exported sessions stamped with the old epoch are now stale.
	if err := c.commitMap(pm.BumpEpoch()); err != nil {
		return err
	}
	c.advanceEpochs(c.part.Load())
	if err := c.addFollower(shard, rep, st); err != nil {
		// The shard is up and serving; a missing replacement follower is
		// degraded redundancy, not a failed promotion.
		_ = err
	}
	c.met.AddPromotion()
	return nil
}

// ResumeDrains retries any in-flight merge drain whose source and
// target shards are both up — the recovery hook after a failover
// revived a shard that died mid-drain.
func (c *Cluster) ResumeDrains() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range c.part.Load().Draining() {
		if c.Engine(d.Shard) == nil || c.Engine(d.Target) == nil {
			continue
		}
		if err := c.finishDrain(d); err != nil {
			return err
		}
	}
	return nil
}

// PartitionShard isolates shard i: its engine detaches from the slot —
// the cluster, router and failure detector all see it down — but its
// store stays alive and un-killed, modeling a primary cut off by a
// network partition rather than a crash. The returned engine is the
// deposed zombie; tests drive it directly to prove the fencing term
// rejects its post-promotion appends.
func (c *Cluster) PartitionShard(i int) (*server.Engine, error) {
	sl := c.slotList()
	if i < 0 || i >= len(sl) {
		return nil, fmt.Errorf("cluster: no shard %d", i)
	}
	eng := sl[i].eng.Swap(nil)
	if eng == nil {
		return nil, fmt.Errorf("cluster: shard %d already down", i)
	}
	c.met.AddShardCrash()
	return eng, nil
}
