package rstar

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/sabre-geo/sabre/internal/geom"
)

func randRect(rng *rand.Rand, worldSide, maxSide float64) geom.Rect {
	w := rng.Float64()*maxSide + 0.1
	h := rng.Float64()*maxSide + 0.1
	x := rng.Float64() * (worldSide - w)
	y := rng.Float64() * (worldSide - h)
	return geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
}

func buildRandom(t testing.TB, n int, seed int64) (*Tree, []Item) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tree := New(DefaultMaxEntries)
	items := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		it := Item{ID: uint64(i), Rect: randRect(rng, 10000, 300)}
		items = append(items, it)
		tree.Insert(it)
	}
	return tree, items
}

func bruteSearchPoint(items []Item, p geom.Point) []uint64 {
	var out []uint64
	for _, it := range items {
		if it.Rect.Contains(p) {
			out = append(out, it.ID)
		}
	}
	return out
}

func bruteSearchRect(items []Item, w geom.Rect) []uint64 {
	var out []uint64
	for _, it := range items {
		if it.Rect.Intersects(w) {
			out = append(out, it.ID)
		}
	}
	return out
}

func sortedIDs(ids []uint64) []uint64 {
	out := append([]uint64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []uint64) bool {
	a, b = sortedIDs(a), sortedIDs(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tree := New(8)
	if tree.Len() != 0 || tree.Height() != 1 {
		t.Fatalf("empty tree Len=%d Height=%d", tree.Len(), tree.Height())
	}
	if got := tree.SearchPoint(geom.Pt(1, 1), nil); len(got) != 0 {
		t.Errorf("SearchPoint on empty = %v", got)
	}
	if got := tree.NearestK(geom.Pt(1, 1), 3, nil); got != nil {
		t.Errorf("NearestK on empty = %v", got)
	}
	if d := tree.NearestDist(geom.Pt(1, 1), nil); !math.IsInf(d, 1) {
		t.Errorf("NearestDist on empty = %v", d)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestSmallCapacityClamped(t *testing.T) {
	tree := New(1)
	for i := 0; i < 100; i++ {
		tree.Insert(Item{ID: uint64(i), Rect: geom.RectAround(geom.Pt(float64(i), 0), 1)})
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if tree.Len() != 100 {
		t.Errorf("Len = %d", tree.Len())
	}
}

func TestInsertAndPointQuery(t *testing.T) {
	tree, items := buildRandom(t, 2000, 1)
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants after build: %v", err)
	}
	if tree.Len() != 2000 {
		t.Fatalf("Len = %d, want 2000", tree.Len())
	}
	if tree.Height() < 2 {
		t.Errorf("expected height >= 2 for 2000 items, got %d", tree.Height())
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		got := tree.SearchPoint(p, nil)
		want := bruteSearchPoint(items, p)
		if !equalIDs(got, want) {
			t.Fatalf("SearchPoint(%v): got %d ids, want %d", p, len(got), len(want))
		}
	}
}

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	tree, items := buildRandom(t, 1500, 3)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		w := randRect(rng, 10000, 2000)
		got := tree.SearchRect(w, nil)
		want := bruteSearchRect(items, w)
		if !equalIDs(got, want) {
			t.Fatalf("SearchRect(%v): got %d, want %d", w, len(got), len(want))
		}
		gotItems := tree.SearchRectItems(w, nil)
		if len(gotItems) != len(want) {
			t.Fatalf("SearchRectItems count %d != %d", len(gotItems), len(want))
		}
	}
}

func TestNearestKMatchesBruteForce(t *testing.T) {
	tree, items := buildRandom(t, 1000, 5)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		k := 1 + rng.Intn(10)
		got := tree.NearestK(p, k, nil)
		// Brute-force k nearest by MinDist.
		type nd struct {
			id uint64
			d  float64
		}
		all := make([]nd, len(items))
		for j, it := range items {
			all[j] = nd{it.ID, it.Rect.MinDist(p)}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
		if len(got) != k {
			t.Fatalf("NearestK returned %d, want %d", len(got), k)
		}
		for j := 0; j < k; j++ {
			if math.Abs(got[j].Dist-all[j].d) > 1e-9 {
				t.Fatalf("neighbor %d dist %v, want %v", j, got[j].Dist, all[j].d)
			}
		}
	}
}

func TestNearestKWithFilter(t *testing.T) {
	tree, items := buildRandom(t, 500, 7)
	p := geom.Pt(5000, 5000)
	filter := func(id uint64) bool { return id%2 == 0 }
	got := tree.NearestK(p, 5, filter)
	for _, n := range got {
		if n.Item.ID%2 != 0 {
			t.Errorf("filter violated: id %d", n.Item.ID)
		}
	}
	// Compare best distance against brute force over even IDs.
	best := math.Inf(1)
	for _, it := range items {
		if it.ID%2 == 0 {
			if d := it.Rect.MinDist(p); d < best {
				best = d
			}
		}
	}
	if d := tree.NearestDist(p, filter); math.Abs(d-best) > 1e-9 {
		t.Errorf("NearestDist = %v, want %v", d, best)
	}
}

func TestDelete(t *testing.T) {
	tree, items := buildRandom(t, 800, 8)
	rng := rand.New(rand.NewSource(9))
	// Delete half the items in random order.
	perm := rng.Perm(len(items))
	deleted := make(map[uint64]bool)
	for _, idx := range perm[:400] {
		it := items[idx]
		if !tree.Delete(it) {
			t.Fatalf("Delete(%v) returned false", it)
		}
		deleted[it.ID] = true
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("invariants after delete %d: %v", it.ID, err)
		}
	}
	if tree.Len() != 400 {
		t.Fatalf("Len = %d, want 400", tree.Len())
	}
	// Remaining items must all be findable; deleted ones must not.
	var remaining []Item
	for _, it := range items {
		if !deleted[it.ID] {
			remaining = append(remaining, it)
		}
	}
	for i := 0; i < 100; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		got := tree.SearchPoint(p, nil)
		want := bruteSearchPoint(remaining, p)
		if !equalIDs(got, want) {
			t.Fatalf("post-delete SearchPoint mismatch at %v", p)
		}
	}
	// Deleting a non-existent item returns false.
	if tree.Delete(Item{ID: 99999, Rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}}) {
		t.Error("Delete of absent item returned true")
	}
}

func TestDeleteAll(t *testing.T) {
	tree, items := buildRandom(t, 300, 10)
	for _, it := range items {
		if !tree.Delete(it) {
			t.Fatalf("Delete(%d) failed", it.ID)
		}
	}
	if tree.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tree.Len())
	}
	if got := tree.SearchRect(geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}, nil); len(got) != 0 {
		t.Errorf("tree not empty: %v", got)
	}
	// Tree remains usable.
	tree.Insert(Item{ID: 1, Rect: geom.RectAround(geom.Pt(5, 5), 2)})
	if got := tree.SearchPoint(geom.Pt(5, 5), nil); len(got) != 1 {
		t.Errorf("reinsertion after empty failed: %v", got)
	}
}

func TestItems(t *testing.T) {
	tree, items := buildRandom(t, 250, 11)
	got := tree.Items()
	if len(got) != len(items) {
		t.Fatalf("Items len = %d, want %d", len(got), len(items))
	}
	ids := make([]uint64, len(got))
	for i, it := range got {
		ids[i] = it.ID
	}
	want := make([]uint64, len(items))
	for i, it := range items {
		want[i] = it.ID
	}
	if !equalIDs(ids, want) {
		t.Error("Items returned different id set")
	}
}

func TestNodeAccessCounting(t *testing.T) {
	tree, _ := buildRandom(t, 1000, 12)
	tree.ResetStats()
	if tree.NodeAccesses() != 0 {
		t.Fatal("ResetStats did not zero counter")
	}
	tree.SearchPoint(geom.Pt(5000, 5000), nil)
	first := tree.NodeAccesses()
	if first == 0 {
		t.Fatal("query did not count node accesses")
	}
	tree.SearchPoint(geom.Pt(5000, 5000), nil)
	if tree.NodeAccesses() != 2*first {
		t.Errorf("expected %d accesses after two identical queries, got %d", 2*first, tree.NodeAccesses())
	}
	// A point query must touch far fewer nodes than a full scan would.
	totalNodes := countNodes(tree.root)
	if int(first) >= totalNodes {
		t.Errorf("point query touched %d of %d nodes; index not pruning", first, totalNodes)
	}
}

func countNodes(n *node) int {
	if n.leaf {
		return 1
	}
	total := 1
	for i := range n.entries {
		total += countNodes(n.entries[i].child)
	}
	return total
}

func TestDuplicateRects(t *testing.T) {
	tree := New(8)
	r := geom.Rect{MinX: 10, MinY: 10, MaxX: 20, MaxY: 20}
	for i := 0; i < 50; i++ {
		tree.Insert(Item{ID: uint64(i), Rect: r})
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants with duplicates: %v", err)
	}
	got := tree.SearchPoint(geom.Pt(15, 15), nil)
	if len(got) != 50 {
		t.Fatalf("expected 50 hits, got %d", len(got))
	}
	for i := 0; i < 50; i++ {
		if !tree.Delete(Item{ID: uint64(i), Rect: r}) {
			t.Fatalf("delete duplicate %d failed", i)
		}
	}
	if tree.Len() != 0 {
		t.Errorf("Len = %d", tree.Len())
	}
}

func TestMixedInsertDeleteStress(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tree := New(16)
	live := map[uint64]Item{}
	nextID := uint64(0)
	for op := 0; op < 3000; op++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			it := Item{ID: nextID, Rect: randRect(rng, 5000, 200)}
			nextID++
			tree.Insert(it)
			live[it.ID] = it
		} else {
			// Delete a random live item.
			var victim Item
			n := rng.Intn(len(live))
			for _, it := range live {
				if n == 0 {
					victim = it
					break
				}
				n--
			}
			if !tree.Delete(victim) {
				t.Fatalf("op %d: delete %d failed", op, victim.ID)
			}
			delete(live, victim.ID)
		}
		if op%250 == 0 {
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("op %d: invariants: %v", op, err)
			}
			if tree.Len() != len(live) {
				t.Fatalf("op %d: Len %d != %d", op, tree.Len(), len(live))
			}
		}
	}
	// Final full verification against brute force.
	items := make([]Item, 0, len(live))
	for _, it := range live {
		items = append(items, it)
	}
	for i := 0; i < 50; i++ {
		w := randRect(rng, 5000, 1000)
		if !equalIDs(tree.SearchRect(w, nil), bruteSearchRect(items, w)) {
			t.Fatalf("final range query mismatch for %v", w)
		}
	}
}

func BenchmarkInsert10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rects := make([]geom.Rect, 10000)
	for i := range rects {
		rects[i] = randRect(rng, 31623, 500)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		tree := New(DefaultMaxEntries)
		for i, r := range rects {
			tree.Insert(Item{ID: uint64(i), Rect: r})
		}
	}
}

func BenchmarkPointQuery(b *testing.B) {
	tree, _ := buildRandom(b, 10000, 1)
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, 1024)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
	}
	var dst []uint64
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		dst = tree.SearchPoint(pts[n%len(pts)], dst[:0])
	}
}

func BenchmarkNearestK(b *testing.B) {
	tree, _ := buildRandom(b, 10000, 1)
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, 1024)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		tree.NearestK(pts[n%len(pts)], 1, nil)
	}
}
