package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDistance(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Pt(1, 2), Pt(1, 2), 0},
		{"horizontal", Pt(0, 0), Pt(3, 0), 3},
		{"vertical", Pt(0, 0), Pt(0, 4), 4},
		{"pythagorean", Pt(0, 0), Pt(3, 4), 5},
		{"negative coords", Pt(-3, -4), Pt(0, 0), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.DistanceTo(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("DistanceTo = %v, want %v", got, tt.want)
			}
			if got := tt.p.DistanceSqTo(tt.q); math.Abs(got-tt.want*tt.want) > 1e-9 {
				t.Errorf("DistanceSqTo = %v, want %v", got, tt.want*tt.want)
			}
		})
	}
}

func TestVectorAngle(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want float64
	}{
		{"east", Vector{1, 0}, 0},
		{"north", Vector{0, 1}, math.Pi / 2},
		{"west", Vector{-1, 0}, math.Pi},
		{"south", Vector{0, -1}, -math.Pi / 2},
		{"northeast", Vector{1, 1}, math.Pi / 4},
		{"zero vector", Vector{0, 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Angle(); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Angle = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRectNormalization(t *testing.T) {
	r := R(5, 7, 1, 2)
	want := Rect{1, 2, 5, 7}
	if r != want {
		t.Errorf("R(5,7,1,2) = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Error("normalized rect should be valid")
	}
}

func TestRectAround(t *testing.T) {
	r := RectAround(Pt(10, 20), 4)
	want := Rect{8, 18, 12, 22}
	if r != want {
		t.Errorf("RectAround = %v, want %v", r, want)
	}
}

func TestRectMeasures(t *testing.T) {
	r := Rect{0, 0, 4, 3}
	if got := r.Area(); got != 12 {
		t.Errorf("Area = %v, want 12", got)
	}
	if got := r.Perimeter(); got != 14 {
		t.Errorf("Perimeter = %v, want 14", got)
	}
	if got := r.Margin(); got != 7 {
		t.Errorf("Margin = %v, want 7", got)
	}
	if got := r.Center(); got != Pt(2, 1.5) {
		t.Errorf("Center = %v, want (2,1.5)", got)
	}
	invalid := Rect{4, 0, 0, 3}
	if invalid.Area() != 0 || invalid.Perimeter() != 0 {
		t.Error("invalid rect should have zero measures")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	tests := []struct {
		name              string
		p                 Point
		inclusive, strict bool
	}{
		{"interior", Pt(5, 5), true, true},
		{"corner", Pt(0, 0), true, false},
		{"edge", Pt(10, 5), true, false},
		{"outside", Pt(11, 5), false, false},
		{"above", Pt(5, 10.001), false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Contains(tt.p); got != tt.inclusive {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.inclusive)
			}
			if got := r.ContainsStrict(tt.p); got != tt.strict {
				t.Errorf("ContainsStrict(%v) = %v, want %v", tt.p, got, tt.strict)
			}
		})
	}
}

func TestRectIntersections(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	tests := []struct {
		name                 string
		b                    Rect
		intersects, overlaps bool
	}{
		{"disjoint", Rect{20, 20, 30, 30}, false, false},
		{"touching edge", Rect{10, 0, 20, 10}, true, false},
		{"touching corner", Rect{10, 10, 20, 20}, true, false},
		{"proper overlap", Rect{5, 5, 15, 15}, true, true},
		{"contained", Rect{2, 2, 8, 8}, true, true},
		{"identical", a, true, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Intersects(tt.b); got != tt.intersects {
				t.Errorf("Intersects = %v, want %v", got, tt.intersects)
			}
			if got := a.Overlaps(tt.b); got != tt.overlaps {
				t.Errorf("Overlaps = %v, want %v", got, tt.overlaps)
			}
			// Symmetry.
			if a.Intersects(tt.b) != tt.b.Intersects(a) {
				t.Error("Intersects not symmetric")
			}
			if a.Overlaps(tt.b) != tt.b.Overlaps(a) {
				t.Error("Overlaps not symmetric")
			}
		})
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	if got, want := a.Intersect(b), (Rect{5, 5, 10, 10}); got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got, want := a.Union(b), (Rect{0, 0, 15, 15}); got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	disjoint := Rect{20, 20, 30, 30}
	if a.Intersect(disjoint).Valid() {
		t.Error("intersection of disjoint rects should be invalid")
	}
	if got := a.OverlapArea(b); got != 25 {
		t.Errorf("OverlapArea = %v, want 25", got)
	}
	if got := a.OverlapArea(disjoint); got != 0 {
		t.Errorf("OverlapArea disjoint = %v, want 0", got)
	}
	if got := a.EnlargementArea(b); got != 125 {
		t.Errorf("EnlargementArea = %v, want 125", got)
	}
}

func TestRectMinDist(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	tests := []struct {
		name string
		p    Point
		want float64
	}{
		{"inside", Pt(5, 5), 0},
		{"on edge", Pt(10, 5), 0},
		{"right of", Pt(13, 5), 3},
		{"above", Pt(5, 14), 4},
		{"diagonal", Pt(13, 14), 5},
		{"below left", Pt(-3, -4), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.MinDist(tt.p); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("MinDist = %v, want %v", got, tt.want)
			}
			if got := r.MinDistSq(tt.p); math.Abs(got-tt.want*tt.want) > 1e-9 {
				t.Errorf("MinDistSq = %v, want %v", got, tt.want*tt.want)
			}
		})
	}
}

func TestRectMaxDist(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if got := r.MaxDist(Pt(0, 0)); math.Abs(got-math.Hypot(10, 10)) > 1e-12 {
		t.Errorf("MaxDist corner = %v", got)
	}
	if got := r.MaxDist(Pt(5, 5)); math.Abs(got-math.Hypot(5, 5)) > 1e-12 {
		t.Errorf("MaxDist center = %v", got)
	}
}

func TestRectClampPoint(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if got := r.ClampPoint(Pt(5, 5)); got != Pt(5, 5) {
		t.Errorf("inside point should clamp to itself, got %v", got)
	}
	if got := r.ClampPoint(Pt(-5, 20)); got != Pt(0, 10) {
		t.Errorf("ClampPoint = %v, want (0,10)", got)
	}
}

func TestRectCorners(t *testing.T) {
	r := Rect{1, 2, 3, 4}
	c := r.Corners()
	want := [4]Point{{1, 2}, {3, 2}, {3, 4}, {1, 4}}
	if c != want {
		t.Errorf("Corners = %v, want %v", c, want)
	}
}

func TestSubtractClip(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	anchor := Pt(2, 2)

	t.Run("no overlap returns unchanged", func(t *testing.T) {
		got, ok := r.SubtractClip(Rect{20, 20, 30, 30}, anchor)
		if !ok || got != r {
			t.Errorf("got %v ok=%v", got, ok)
		}
	})
	t.Run("clips away obstacle keeping anchor", func(t *testing.T) {
		obstacle := Rect{6, 0, 10, 10}
		got, ok := r.SubtractClip(obstacle, anchor)
		if !ok {
			t.Fatal("expected ok")
		}
		if got.Overlaps(obstacle) {
			t.Errorf("clipped rect %v still overlaps obstacle", got)
		}
		if !got.Contains(anchor) {
			t.Errorf("clipped rect %v lost anchor", got)
		}
	})
	t.Run("chooses largest remainder", func(t *testing.T) {
		obstacle := Rect{8, 8, 10, 10}
		got, _ := r.SubtractClip(obstacle, anchor)
		// Cutting at x=8 keeps area 80; cutting at y=8 also keeps 80.
		if got.Area() != 80 {
			t.Errorf("Area = %v, want 80", got.Area())
		}
	})
	t.Run("anchor inside obstacle fails", func(t *testing.T) {
		obstacle := Rect{1, 1, 3, 3}
		_, ok := r.SubtractClip(obstacle, Pt(2, 2))
		if ok {
			t.Error("expected failure when anchor is inside obstacle interior")
		}
	})
	t.Run("anchor on obstacle boundary succeeds", func(t *testing.T) {
		obstacle := Rect{2, 2, 4, 4}
		got, ok := r.SubtractClip(obstacle, Pt(2, 2))
		if !ok {
			t.Fatal("expected ok on boundary anchor")
		}
		if got.Overlaps(obstacle) || !got.Contains(Pt(2, 2)) {
			t.Errorf("bad clip result %v", got)
		}
	})
}

// TestSubtractClipProperty verifies that repeated clipping against random
// obstacles always yields a rectangle that contains the anchor and overlaps
// no obstacle — the soundness safety net for rectangular safe regions.
func TestSubtractClipProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		region := Rect{0, 0, 1000, 1000}
		anchor := Pt(rng.Float64()*1000, rng.Float64()*1000)
		var obstacles []Rect
		for i := 0; i < 20; i++ {
			w, h := rng.Float64()*200+1, rng.Float64()*200+1
			x, y := rng.Float64()*1000, rng.Float64()*1000
			ob := Rect{x, y, x + w, y + h}
			if ob.ContainsStrict(anchor) {
				continue
			}
			obstacles = append(obstacles, ob)
		}
		cur := region
		for _, ob := range obstacles {
			next, ok := cur.SubtractClip(ob, anchor)
			if !ok {
				t.Fatalf("iter %d: clip failed for obstacle %v anchor %v", iter, ob, anchor)
			}
			cur = next
		}
		if !cur.Contains(anchor) {
			t.Fatalf("iter %d: result %v lost anchor %v", iter, cur, anchor)
		}
		for _, ob := range obstacles {
			if cur.Overlaps(ob) {
				t.Fatalf("iter %d: result %v overlaps obstacle %v", iter, cur, ob)
			}
		}
	}
}

func TestNormalizeAngle(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
		{5 * math.Pi / 2, math.Pi / 2},
	}
	for _, tt := range tests {
		if got := NormalizeAngle(tt.in); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

// Property: Union always contains both inputs; Intersect is contained in both.
func TestQuickUnionIntersectProperties(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 float64) bool {
		a := R(clampf(x1), clampf(y1), clampf(x2), clampf(y2))
		b := R(clampf(x3), clampf(y3), clampf(x4), clampf(y4))
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			return false
		}
		i := a.Intersect(b)
		if i.Valid() && (!a.ContainsRect(i) || !b.ContainsRect(i)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: MinDist(p) == 0 iff Contains(p), for finite inputs.
func TestQuickMinDistContainsAgreement(t *testing.T) {
	f := func(x1, y1, x2, y2, px, py float64) bool {
		r := R(clampf(x1), clampf(y1), clampf(x2), clampf(y2))
		p := Pt(clampf(px), clampf(py))
		return (r.MinDist(p) == 0) == r.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// clampf maps arbitrary float64 quick-check inputs into a sane finite range.
func clampf(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func TestOverlapsDegenerate(t *testing.T) {
	full := Rect{0, 0, 10, 10}
	line := Rect{2, 2, 8, 2}  // zero height
	point := Rect{5, 5, 5, 5} // zero area
	if full.Overlaps(line) || line.Overlaps(full) {
		t.Error("degenerate rect reported interior overlap")
	}
	if full.Overlaps(point) || point.Overlaps(point) {
		t.Error("point rect reported interior overlap")
	}
	// But Intersects (closed) still sees them.
	if !full.Intersects(line) || !full.Intersects(point) {
		t.Error("Intersects should include degenerate contact")
	}
}
