package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/transport"
	"github.com/sabre-geo/sabre/internal/wire"
)

// DefaultIdleTimeout is how long a connection may stay silent before the
// server reaps it as a dead peer. Clients heartbeat well inside this
// window, so only a truly dead link times out; its session state stays in
// the engine for a later resume.
const DefaultIdleTimeout = 2 * time.Minute

// TCPServer fronts an Engine with a TCP listener speaking length-prefixed
// wire frames: one connection per client, one serving goroutine per
// connection. It demonstrates the engine outside the in-process
// simulation; cmd/alarmserver wraps it.
type TCPServer struct {
	eng         *Engine
	ln          net.Listener
	log         *log.Logger
	idleTimeout time.Duration

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	// userConns maps registered users to their connection so the engine's
	// moving-target pushes reach them.
	userConns map[uint64]transport.Conn
	wg        sync.WaitGroup
}

// NewTCPServer starts listening on addr (e.g. ":7700") with the default
// idle timeout. Serving starts with Serve.
func NewTCPServer(eng *Engine, addr string, logger *log.Logger) (*TCPServer, error) {
	return NewTCPServerIdle(eng, addr, logger, DefaultIdleTimeout)
}

// NewTCPServerIdle is NewTCPServer with an explicit idle timeout; zero
// disables dead-peer reaping.
func NewTCPServerIdle(eng *Engine, addr string, logger *log.Logger, idleTimeout time.Duration) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &TCPServer{
		eng:         eng,
		ln:          ln,
		log:         logger,
		idleTimeout: idleTimeout,
		conns:       make(map[net.Conn]struct{}),
		userConns:   make(map[uint64]transport.Conn),
	}
	// Deliver moving-target invalidations (Seq-0 pushes) to connected
	// clients. The engine invokes the pusher after releasing its locks, so
	// a blocking Send (or even a callback into the engine) is safe here.
	eng.SetPusher(func(user alarm.UserID, msgs []wire.Message) {
		s.mu.Lock()
		conn := s.userConns[uint64(user)]
		s.mu.Unlock()
		if conn == nil {
			return
		}
		for _, m := range msgs {
			if err := conn.Send(m); err != nil {
				s.log.Printf("push to user %d: %v", user, err)
				return
			}
		}
	})
	return s, nil
}

// Addr returns the bound listener address.
func (s *TCPServer) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts and serves connections until Close. It always returns a
// non-nil error; after Close the error wraps net.ErrClosed.
func (s *TCPServer) Serve() error {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return fmt.Errorf("server: closed: %w", err)
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return errors.New("server: closed")
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(nc)
		}()
	}
}

// Close stops the listener and all connections, then waits for the
// serving goroutines to exit.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *TCPServer) serveConn(nc net.Conn) {
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
	}()
	// The read deadline doubles as dead-peer detection: a client that
	// neither reports nor heartbeats within the idle window is reaped. Its
	// session state stays in the engine for a later Hello+token resume.
	conn := transport.NewTCPDeadline(nc, s.idleTimeout, 30*time.Second)
	var registeredUser uint64
	defer func() {
		if registeredUser != 0 {
			s.mu.Lock()
			if s.userConns[registeredUser] == conn {
				delete(s.userConns, registeredUser)
			}
			s.mu.Unlock()
		}
	}()
	bind := func(user uint64) {
		registeredUser = user
		s.mu.Lock()
		s.userConns[user] = conn
		s.mu.Unlock()
	}
	reply := func(responses []wire.Message) bool {
		for _, r := range responses {
			if err := conn.Send(r); err != nil {
				s.log.Printf("conn %s: send: %v", nc.RemoteAddr(), err)
				return false
			}
		}
		return true
	}
	for {
		msg, err := conn.Recv()
		if err != nil {
			switch {
			case errors.Is(err, io.EOF), errors.Is(err, net.ErrClosed):
			case errors.Is(err, os.ErrDeadlineExceeded):
				s.log.Printf("conn %s: idle timeout, reaping", nc.RemoteAddr())
			default:
				s.log.Printf("conn %s: recv: %v", nc.RemoteAddr(), err)
			}
			return
		}
		switch m := msg.(type) {
		case wire.Register:
			if err := s.eng.Register(m); err != nil {
				s.log.Printf("conn %s: register: %v", nc.RemoteAddr(), err)
				return
			}
			bind(m.User)
		case wire.Hello:
			responses, resumed, err := s.eng.HandleHello(m)
			if err != nil {
				s.log.Printf("conn %s: hello: %v", nc.RemoteAddr(), err)
				return
			}
			bind(m.User)
			if !reply(responses) {
				return
			}
			if resumed {
				s.log.Printf("conn %s: user %d resumed session", nc.RemoteAddr(), m.User)
			}
		case wire.Heartbeat:
			if !reply(s.eng.HandleHeartbeat(alarm.UserID(registeredUser), m)) {
				return
			}
		case wire.FiredAck:
			if registeredUser != 0 {
				if err := s.eng.AckFired(alarm.UserID(registeredUser), m.Alarms); err != nil {
					s.log.Printf("conn %s: fired-ack: %v", nc.RemoteAddr(), err)
					return
				}
			}
		case wire.InstallContinuous:
			if !reply([]wire.Message{s.installReply(alarm.Alarm{
				Scope:       scopeFor(m.Subscribers),
				Owner:       alarm.UserID(m.Owner),
				Subscribers: toUserIDs(m.Subscribers),
				Region:      m.Region,
				Kind:        alarm.KindContinuous,
				Cooldown:    m.Cooldown,
			})}) {
				return
			}
		case wire.InstallPair:
			if !reply([]wire.Message{s.installReply(alarm.Alarm{
				Scope:       alarm.Shared,
				Owner:       alarm.UserID(m.Owner),
				Subscribers: []alarm.UserID{alarm.UserID(m.Owner)},
				Kind:        alarm.KindPair,
				Anchor:      alarm.UserID(m.Anchor),
				Radius:      m.Radius,
				Cooldown:    m.Cooldown,
			})}) {
				return
			}
		case wire.InstallComposite:
			factors := make([]alarm.Factor, len(m.Factors))
			for i, f := range m.Factors {
				factors[i] = alarm.Factor{Center: f.Center, Radius: f.Radius, Region: f.Region, Weight: f.Weight}
			}
			if !reply([]wire.Message{s.installReply(alarm.Alarm{
				Scope:       scopeFor(m.Subscribers),
				Owner:       alarm.UserID(m.Owner),
				Subscribers: toUserIDs(m.Subscribers),
				Kind:        alarm.KindComposite,
				Factors:     factors,
				Threshold:   m.Threshold,
				ExpiresAt:   m.ExpiresAt,
			})}) {
				return
			}
		case wire.UpdateBatch:
			br, err := s.eng.HandleUpdateBatch(m)
			if err != nil {
				s.log.Printf("conn %s: update-batch: %v", nc.RemoteAddr(), err)
				return
			}
			if err := conn.Send(br); err != nil {
				s.log.Printf("conn %s: send: %v", nc.RemoteAddr(), err)
				return
			}
		case wire.PositionUpdate:
			responses, err := s.eng.HandleUpdate(m)
			if err != nil {
				s.log.Printf("conn %s: update: %v", nc.RemoteAddr(), err)
				return
			}
			// Always answer something so the client can resume monitoring
			// (periodic clients get a bare Ack).
			if len(responses) == 0 {
				responses = []wire.Message{wire.Ack{Seq: m.Seq}}
			}
			for _, r := range responses {
				if err := conn.Send(r); err != nil {
					s.log.Printf("conn %s: send: %v", nc.RemoteAddr(), err)
					return
				}
			}
		default:
			s.log.Printf("conn %s: unexpected %v", nc.RemoteAddr(), msg.Kind())
			return
		}
	}
}

// installReply durably installs one lifecycle alarm and builds the typed
// reply: the assigned ID, or 0 when validation (or the log) rejected it.
// A rejected install is an application-level failure, not a protocol
// one, so the connection stays up.
func (s *TCPServer) installReply(a alarm.Alarm) wire.InstallReply {
	ids, err := s.eng.InstallAlarms([]alarm.Alarm{a})
	if err != nil || len(ids) == 0 {
		s.log.Printf("install %v rejected: %v", a.Kind, err)
		return wire.InstallReply{}
	}
	return wire.InstallReply{ID: uint64(ids[0])}
}

// scopeFor maps a typed install's subscriber list to the alarm scope:
// owner-only installs are private, anything with subscribers is shared.
func scopeFor(subs []uint64) alarm.Scope {
	if len(subs) == 0 {
		return alarm.Private
	}
	return alarm.Shared
}

func toUserIDs(subs []uint64) []alarm.UserID {
	out := make([]alarm.UserID, len(subs))
	for i, s := range subs {
		out[i] = alarm.UserID(s)
	}
	return out
}
