package server

import (
	"sort"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/store"
	"github.com/sabre-geo/sabre/internal/wire"
)

// This file implements the two halves of a cross-shard session handoff
// (internal/cluster): the old shard exports the client's durable session
// state and forgets it; the new shard imports that state and mints a
// fresh resume token. Each half follows the write-ahead discipline of
// its own shard's log — export logs an ExpireRec (replay drops the
// client and its tokens, exactly like idle expiry), import logs a
// HelloRec followed by a FiredRec carrying the pending firings (replay
// reconstructs a reliable client with the same unacknowledged set). A
// crash between the two halves cannot lose a firing: the router holds
// the exported record until import succeeds.

// ExportSession removes the user's session from this engine and returns
// its durable record for re-enrollment elsewhere. The second return is
// false when the user has no state here. Soft state (last position,
// bitmap base cell, heading) is deliberately dropped — it regenerates
// from the client's next report, exactly as it does across a crash.
func (e *Engine) ExportSession(user alarm.UserID) (store.ClientRec, bool, error) {
	sh := e.shardFor(user)
	sh.mu.Lock()
	st := sh.m[user]
	delete(sh.m, user)
	sh.mu.Unlock()
	if st == nil {
		return store.ClientRec{}, false, nil
	}

	st.mu.Lock()
	rec := store.ClientRec{
		User:         uint64(user),
		Strategy:     st.strategy,
		MaxHeight:    uint8(st.maxHeight),
		Reliable:     st.reliable,
		PendingFired: append([]uint64(nil), st.pendingFired...),
		Lifecycle:    e.reg.Load().LifecycleStatesFor(user),
		LastSeq:      st.lastSeq,
		Epoch:        e.epoch.Load(),
	}
	st.mu.Unlock()

	e.sessMu.Lock()
	for tok, u := range e.sessions {
		if u == user {
			delete(e.sessions, tok)
		}
	}
	e.sessMu.Unlock()
	e.met.AddSessionExported()

	// ExpireRec replay deletes the client and every token for it — the
	// exact effect of the removal above.
	if err := e.logRecord(store.ExpireRec{User: uint64(user)}); err != nil {
		return rec, true, err
	}
	return rec, true, nil
}

// ImportSession enrolls a session exported from another shard. For a
// reliable session it mints a resume token (returned for the router to
// deliver to the client), carries the pending firings across, and marks
// every carried id fired in the local registry so an alarm installed on
// both shards cannot fire twice. Non-reliable (plain Register) clients
// import as a plain registration and get token 0.
func (e *Engine) ImportSession(rec store.ClientRec) (uint64, error) {
	user := alarm.UserID(rec.User)
	reg := e.reg.Load()
	// Carry the user's lifecycle machines first: the monotone merge makes
	// replay (and a racing duplicate import) idempotent, and Delivered is
	// false because the delivery itself travels in PendingFired.
	if len(rec.Lifecycle) > 0 {
		reg.ApplyLifecycleStates(rec.Lifecycle)
		if err := e.logRecords(lifecycleRecs(rec.Lifecycle)); err != nil {
			return 0, err
		}
	}
	if !rec.Reliable {
		return 0, e.Register(wire.Register{
			User: rec.User, Strategy: rec.Strategy, MaxHeight: rec.MaxHeight,
		})
	}

	e.sessMu.Lock()
	if e.sessions == nil {
		e.sessions = make(map[uint64]alarm.UserID)
	}
	e.lastToken++
	token := e.lastToken
	e.sessions[token] = user
	e.sessMu.Unlock()

	pending := append([]uint64(nil), rec.PendingFired...)
	// Retire the carried pairs locally: a pending firing was already
	// delivered (or is being redelivered) — the local copy of the alarm
	// must become free space here too, keeping pendingFired and any
	// future newFired disjoint. Pending entries are packed events: only
	// one-shot firings and composite severities fold into the fired map;
	// enter/exit events carry machine state, which rec.Lifecycle already
	// applied above.
	for _, id := range pending {
		markFiredEvent(reg, user, id)
	}

	sh := e.shardFor(user)
	sh.mu.Lock()
	sh.m[user] = &clientState{
		strategy:     rec.Strategy,
		maxHeight:    int(rec.MaxHeight),
		reliable:     true,
		pendingFired: pending,
		lastSeq:      rec.LastSeq,
		lastActive:   e.now(),
	}
	sh.mu.Unlock()
	e.met.AddSessionImported()

	// Write-ahead: HelloRec reconstructs the reliable client and its
	// token; FiredRec re-marks the carried pairs fired and re-appends
	// them to the pending set. Replay of the pair is idempotent.
	if err := e.logRecord(store.HelloRec{
		User: rec.User, Token: token, Strategy: rec.Strategy, MaxHeight: rec.MaxHeight,
	}); err != nil {
		return token, err
	}
	if len(pending) > 0 {
		if err := e.logRecord(store.FiredRec{User: rec.User, Alarms: pending}); err != nil {
			return token, err
		}
	}
	return token, nil
}

// HasSession reports whether the user has client state on this engine.
func (e *Engine) HasSession(user alarm.UserID) bool {
	sh := e.shardFor(user)
	sh.mu.RLock()
	_, ok := sh.m[user]
	sh.mu.RUnlock()
	return ok
}

// PeekSession returns the user's durable session record without
// removing anything — the read-only first half of a merge drain. The
// drain imports the peeked record at the target and only then drops it
// here (import-before-drop), so a crash at any point between the two
// leaves at worst a benign duplicate session, which the router's
// adoption path and the client's firing dedup absorb — never a lost
// firing.
func (e *Engine) PeekSession(user alarm.UserID) (store.ClientRec, bool) {
	sh := e.shardFor(user)
	sh.mu.RLock()
	st := sh.m[user]
	sh.mu.RUnlock()
	if st == nil {
		return store.ClientRec{}, false
	}
	st.mu.Lock()
	rec := store.ClientRec{
		User:         uint64(user),
		Strategy:     st.strategy,
		MaxHeight:    uint8(st.maxHeight),
		Reliable:     st.reliable,
		PendingFired: append([]uint64(nil), st.pendingFired...),
		Lifecycle:    e.reg.Load().LifecycleStatesFor(user),
		LastSeq:      st.lastSeq,
		Epoch:        e.epoch.Load(),
	}
	st.mu.Unlock()
	return rec, true
}

// DropSession removes the user's session after a drain imported it
// elsewhere: client state and resume tokens go and an ExpireRec is
// logged (replay re-drops them). A missing user is a no-op.
func (e *Engine) DropSession(user alarm.UserID) error {
	sh := e.shardFor(user)
	sh.mu.Lock()
	st := sh.m[user]
	delete(sh.m, user)
	sh.mu.Unlock()
	if st == nil {
		return nil
	}
	e.sessMu.Lock()
	for tok, u := range e.sessions {
		if u == user {
			delete(e.sessions, tok)
		}
	}
	e.sessMu.Unlock()
	e.met.AddSessionExported()
	return e.logRecord(store.ExpireRec{User: uint64(user)})
}

// ImportSessionMerge enrolls a drained session, tolerating an existing
// local session for the same user — the user may already have moved
// here through the lazy redirect path while the drain was in flight, or
// a crashed drain may retry a record it already imported. A reliable
// local session absorbs the drained pending firings by union (so
// nothing the source still owed the client is lost) and keeps its
// token; only when the user is absent (or only registered fire-and-
// forget while the record is reliable) does this fall back to a full
// ImportSession. The second return reports whether an existing session
// was merged into.
func (e *Engine) ImportSessionMerge(rec store.ClientRec) (uint64, bool, error) {
	user := alarm.UserID(rec.User)
	sh := e.shardFor(user)
	sh.mu.RLock()
	st := sh.m[user]
	sh.mu.RUnlock()
	if st == nil {
		tok, err := e.ImportSession(rec)
		return tok, false, err
	}

	reg := e.reg.Load()
	if len(rec.Lifecycle) > 0 {
		reg.ApplyLifecycleStates(rec.Lifecycle)
		if err := e.logRecords(lifecycleRecs(rec.Lifecycle)); err != nil {
			return 0, true, err
		}
	}

	var added []uint64
	st.mu.Lock()
	// Merge the stale-report watermarks forward: whichever side accepted
	// the newer report wins, so a resend replayed after the merge still
	// reads as stale.
	if st.lastSeq == 0 || (rec.LastSeq != 0 && int32(rec.LastSeq-st.lastSeq) > 0) {
		st.lastSeq = rec.LastSeq
	}
	if rec.Reliable && !st.reliable {
		// The local state is a plain fire-and-forget registration; the
		// drained session is the richer one. Promote in place so the
		// pending firings survive.
		st.reliable = true
		st.lastActive = e.now()
	}
	if rec.Reliable && st.reliable {
		for _, id := range rec.PendingFired {
			if !containsU64(st.pendingFired, id) {
				st.pendingFired = append(st.pendingFired, id)
				added = append(added, id)
			}
		}
	}
	st.mu.Unlock()

	if len(added) > 0 {
		for _, id := range added {
			markFiredEvent(reg, user, id)
		}
		if err := e.logRecord(store.FiredRec{User: rec.User, Alarms: added}); err != nil {
			return 0, true, err
		}
	}
	return 0, true, nil
}

// markFiredEvent folds one pending delivery entry (a packed event) into
// the fired map: one-shot firings by raw ID, composite severities by the
// alarm the event was packed from. Enter/exit events carry no fired state
// — their machine travels in ClientRec.Lifecycle.
func markFiredEvent(reg *alarm.Registry, user alarm.UserID, ev uint64) {
	switch alarm.EventTransition(ev) {
	case alarm.TransFired:
		reg.MarkFired(alarm.ID(ev), user)
	case alarm.TransSeverity:
		reg.MarkFired(alarm.EventAlarm(ev), user)
	}
}

// lifecycleRecs converts carried machine states into the TransitionRecs
// that reconstruct them on replay. Delivered is false: the delivery (if
// still owed) travels separately in the pending set.
func lifecycleRecs(states []alarm.LifecycleState) []store.Record {
	var recs []store.Record
	for _, s := range states {
		if ev, ok := s.Event(); ok {
			recs = append(recs, store.TransitionRec{User: s.User, Event: ev, Tick: s.LastTick, Delivered: false})
		}
	}
	return recs
}

// SessionUsers returns every user with client state on this engine,
// sorted for deterministic drain order.
func (e *Engine) SessionUsers() []alarm.UserID {
	var users []alarm.UserID
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		for u := range sh.m {
			users = append(users, u)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	return users
}

// SessionPositions returns the last reported position of every resident
// client that has reported one — the load profile a population-aware
// split cuts at the median of. Order is unspecified.
func (e *Engine) SessionPositions() []geom.Point {
	var pts []geom.Point
	for _, st := range e.clientsSnapshot() {
		st.mu.Lock()
		if st.hasPos {
			pts = append(pts, st.lastPos)
		}
		st.mu.Unlock()
	}
	return pts
}

// GCAlarmsOutside removes every alarm whose region does not intersect
// keep — the shard's install footprint after its rectangle shrank in a
// split. Safe by the margin rule: an alarm outside the margin cannot
// shape any safe region this shard computes, and its fired pairs stay
// in the registry's fired set (MarkFired tolerates absent alarms), so
// nothing refires if the alarm is ever re-adopted. Returns how many
// alarms were dropped; on a log error the count so far is returned with
// the error.
func (e *Engine) GCAlarmsOutside(keep geom.Rect) (int, error) {
	dropped := 0
	for _, a := range e.Registry().All() {
		// Pair alarms have no static region and follow their endpoints,
		// not the shard rectangle: never GC them on a split.
		if a.Kind == alarm.KindPair || a.Region.Intersects(keep) {
			continue
		}
		ok, err := e.RemoveAlarm(a.ID)
		if ok {
			dropped++
		}
		if err != nil {
			return dropped, err
		}
	}
	return dropped, nil
}

// ClientCount returns the number of resident client states (the load
// balancer's session-count signal).
func (e *Engine) ClientCount() int {
	n := 0
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// AdoptAlarms installs alarm copies this shard is missing and re-marks
// their fired pairs — a repartition transition widening the shard's
// responsibility. Copies already present are skipped (alarm IDs are
// global, so identity is exact), as are pairs already fired. Replay of
// the appended InstallRec/FiredRec records is idempotent; a FiredRec
// for a user with a live reliable session here would re-append the ids
// to its pending set on replay, which at worst redelivers an already-
// acknowledged firing that the client's dedup absorbs.
func (e *Engine) AdoptAlarms(alarms []alarm.Alarm, fired []alarm.FiredPair, states []alarm.LifecycleState) error {
	reg := e.reg.Load()
	var fresh []alarm.Alarm
	for _, a := range alarms {
		if _, ok := reg.Get(a.ID); !ok {
			fresh = append(fresh, a)
		}
	}
	if len(fresh) > 0 {
		if err := reg.InstallAssigned(fresh); err != nil {
			return err
		}
		e.InvalidatePublicBitmaps()
		e.syncAlarmGauges(reg)
		for _, a := range fresh {
			if err := e.logRecord(store.InstallRec{Alarm: a}); err != nil {
				return err
			}
		}
	}
	if len(states) > 0 {
		reg.ApplyLifecycleStates(states)
		if err := e.logRecords(lifecycleRecs(states)); err != nil {
			return err
		}
	}

	byUser := make(map[uint64][]uint64)
	var users []uint64
	for _, p := range fired {
		if reg.Fired(p.Alarm, alarm.UserID(p.User)) {
			continue
		}
		reg.MarkFired(p.Alarm, alarm.UserID(p.User))
		if _, ok := byUser[uint64(p.User)]; !ok {
			users = append(users, uint64(p.User))
		}
		byUser[uint64(p.User)] = append(byUser[uint64(p.User)], uint64(p.Alarm))
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	for _, u := range users {
		if err := e.logRecord(store.FiredRec{User: u, Alarms: byUser[u]}); err != nil {
			return err
		}
	}
	return nil
}

func containsU64(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
