package server

import (
	"fmt"
	"testing"
	"time"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/client"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/transport"
	"github.com/sabre-geo/sabre/internal/wire"
)

// startTCP spins up an engine + TCP front end and returns the address and
// a cleanup-registered server.
func startTCP(t *testing.T) (*Engine, string) {
	t.Helper()
	eng := newEngine(t, nil)
	srv, err := NewTCPServer(eng, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve()
	}()
	t.Cleanup(func() {
		srv.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("Serve did not exit after Close")
		}
	})
	return eng, srv.Addr().String()
}

// TestTCPEndToEnd drives a real client state machine over a real TCP
// connection through registration, monitoring and an alarm trigger.
func TestTCPEndToEnd(t *testing.T) {
	eng, addr := startTCP(t)
	id := install(t, eng, alarm.Alarm{
		Scope: alarm.Private, Owner: 42,
		Region: geom.RectAround(geom.Pt(2000, 500), 200),
	})

	conn, err := transport.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(wire.Register{User: 42, Strategy: wire.StrategyMWPSR}); err != nil {
		t.Fatal(err)
	}

	met := &metrics.Client{}
	cl := client.New(42, wire.StrategyMWPSR, met)
	var fired []uint64
	// Walk east toward the alarm, 20 m per tick.
	for tick := 0; tick < 200 && len(fired) == 0; tick++ {
		pos := geom.Pt(500+float64(tick)*20, 500)
		upd := cl.Tick(tick, pos)
		if upd == nil {
			continue
		}
		if err := conn.Send(*upd); err != nil {
			t.Fatal(err)
		}
		// Read responses until monitoring resumes (awaiting cleared by a
		// region/ack; fired notifications may precede it).
		for {
			msg, err := conn.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if f, ok := msg.(wire.AlarmFired); ok {
				fired = append(fired, f.Alarms...)
			}
			if err := cl.Handle(tick, msg); err != nil {
				t.Fatal(err)
			}
			if _, ok := msg.(wire.AlarmFired); !ok {
				break // region/period/ack arrived; resume
			}
		}
	}
	if len(fired) != 1 || fired[0] != uint64(id) {
		t.Fatalf("fired = %v, want [%d]", fired, id)
	}
	if met.MessagesSent == 0 || met.MessagesSent > 50 {
		t.Errorf("MessagesSent = %d; monitoring should suppress most reports", met.MessagesSent)
	}
	if eng.Metrics().Snapshot().AlarmsTriggered != 1 {
		t.Errorf("server AlarmsTriggered = %d", eng.Metrics().Snapshot().AlarmsTriggered)
	}
}

func TestTCPMultipleClients(t *testing.T) {
	eng, addr := startTCP(t)
	install(t, eng, alarm.Alarm{Scope: alarm.Public, Owner: 1, Region: geom.RectAround(geom.Pt(1000, 1000), 200)})

	results := make(chan error, 4)
	for u := uint64(10); u < 14; u++ {
		go func(user uint64) {
			conn, err := transport.Dial(addr)
			if err != nil {
				results <- err
				return
			}
			defer conn.Close()
			if err := conn.Send(wire.Register{User: user, Strategy: wire.StrategyPBSR, MaxHeight: 4}); err != nil {
				results <- err
				return
			}
			cl := client.New(user, wire.StrategyPBSR, &metrics.Client{})
			for tick := 0; tick < 120; tick++ {
				pos := geom.Pt(500+float64(tick)*10, 1000)
				upd := cl.Tick(tick, pos)
				if upd == nil {
					continue
				}
				if err := conn.Send(*upd); err != nil {
					results <- err
					return
				}
				for {
					msg, err := conn.Recv()
					if err != nil {
						results <- err
						return
					}
					if err := cl.Handle(tick, msg); err != nil {
						results <- err
						return
					}
					if _, ok := msg.(wire.AlarmFired); !ok {
						break
					}
				}
			}
			if len(cl.Fired()) != 1 {
				results <- fmt.Errorf("client %d fired %d alarms, want 1", user, len(cl.Fired()))
				return
			}
			results <- nil
		}(u)
	}
	for i := 0; i < 4; i++ {
		if err := <-results; err != nil {
			t.Error(err)
		}
	}
	if got := eng.Metrics().Snapshot().AlarmsTriggered; got != 4 {
		t.Errorf("AlarmsTriggered = %d, want 4 (public alarm per user)", got)
	}
}

func TestTCPServerCloseIdempotent(t *testing.T) {
	eng := newEngine(t, nil)
	srv, err := NewTCPServer(eng, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestTCPMovingTargetPush: a subscriber connected over TCP receives a
// Seq-0 safe region push when the alarm target (another connection)
// reports a new position.
func TestTCPMovingTargetPush(t *testing.T) {
	eng, addr := startTCP(t)
	install(t, eng, alarm.Alarm{
		Scope:       alarm.Shared,
		Owner:       2,
		Subscribers: []alarm.UserID{2},
		Region:      geom.RectAround(geom.Pt(1000, 1000), 200),
		Target:      1,
	})

	sub, err := transport.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Send(wire.Register{User: 2, Strategy: wire.StrategyMWPSR}); err != nil {
		t.Fatal(err)
	}
	if err := sub.Send(wire.PositionUpdate{User: 2, Seq: 1, Pos: geom.Pt(5000, 5000)}); err != nil {
		t.Fatal(err)
	}
	first, err := sub.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if rr, ok := first.(wire.RectRegion); !ok || rr.Seq != 1 {
		t.Fatalf("expected region reply, got %v", first)
	}

	tgt, err := transport.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	if err := tgt.Send(wire.Register{User: 1, Strategy: wire.StrategyPeriodic}); err != nil {
		t.Fatal(err)
	}
	if err := tgt.Send(wire.PositionUpdate{User: 1, Seq: 1, Pos: geom.Pt(4800, 5000)}); err != nil {
		t.Fatal(err)
	}

	// The subscriber's next inbound message must be the pushed region.
	pushc := make(chan wire.Message, 1)
	errc := make(chan error, 1)
	go func() {
		m, err := sub.Recv()
		if err != nil {
			errc <- err
			return
		}
		pushc <- m
	}()
	select {
	case m := <-pushc:
		rr, ok := m.(wire.RectRegion)
		if !ok || rr.Seq != 0 {
			t.Fatalf("expected Seq-0 push, got %#v", m)
		}
		movedAlarm := geom.RectAround(geom.Pt(4800, 5000), 200)
		if rr.Rect.Overlaps(movedAlarm) {
			t.Errorf("pushed region %v overlaps moved alarm", rr.Rect)
		}
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("no push arrived over TCP")
	}
}

// TestTCPLifecycleInstall drives the typed lifecycle installs (wire kinds
// 16–19) over a real TCP connection: valid installs answer InstallReply
// with the assigned id, a rejected one answers id 0 on a still-live
// connection, and a continuous alarm installed this way delivers its
// packed enter event end to end.
func TestTCPLifecycleInstall(t *testing.T) {
	eng, addr := startTCP(t)
	conn, err := transport.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	installOver := func(m wire.Message) uint64 {
		t.Helper()
		if err := conn.Send(m); err != nil {
			t.Fatal(err)
		}
		reply, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		ir, ok := reply.(wire.InstallReply)
		if !ok {
			t.Fatalf("expected InstallReply, got %#v", reply)
		}
		return ir.ID
	}

	contID := installOver(wire.InstallContinuous{
		Owner: 7, Region: geom.RectAround(geom.Pt(2000, 500), 200),
	})
	if contID == 0 {
		t.Fatal("continuous install rejected")
	}
	if pairID := installOver(wire.InstallPair{Owner: 7, Anchor: 8, Radius: 150}); pairID == 0 {
		t.Fatal("pair install rejected")
	}
	if compID := installOver(wire.InstallComposite{
		Owner: 7,
		Factors: []wire.FactorInfo{
			{Center: geom.Pt(900, 900), Radius: 100, Weight: 1},
		},
		Threshold: 0.5,
	}); compID == 0 {
		t.Fatal("composite install rejected")
	}
	// Anchor == owner is invalid: the reply carries id 0 and the
	// connection survives (the follow-up install still answers).
	if badID := installOver(wire.InstallPair{Owner: 7, Anchor: 7, Radius: 150}); badID != 0 {
		t.Fatalf("invalid pair install accepted with id %d", badID)
	}
	sn := eng.Metrics().Snapshot()
	if sn.AlarmsContinuous != 1 || sn.AlarmsPair != 1 || sn.AlarmsComposite != 1 {
		t.Fatalf("gauges = %d/%d/%d, want 1/1/1",
			sn.AlarmsContinuous, sn.AlarmsPair, sn.AlarmsComposite)
	}

	// The installed continuous alarm fires its packed enter event over the
	// same wire path a one-shot firing uses.
	if err := conn.Send(wire.Register{User: 7, Strategy: wire.StrategyMWPSR}); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(wire.PositionUpdate{User: 7, Seq: 1, Pos: geom.Pt(2000, 500)}); err != nil {
		t.Fatal(err)
	}
	want := alarm.PackEvent(alarm.ID(contID), alarm.TransEnter, 1)
	var fired []uint64
	for len(fired) == 0 {
		msg, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		f, ok := msg.(wire.AlarmFired)
		if !ok {
			t.Fatalf("expected AlarmFired first, got %#v", msg)
		}
		fired = append(fired, f.Alarms...)
	}
	if len(fired) != 1 || fired[0] != want {
		t.Fatalf("fired = %#x, want [%#x]", fired, want)
	}
}
