// Package bitio provides a compact bit-level writer and reader.
//
// It backs the bitmap-encoded safe region representations (GBSR/PBSR), where
// safe regions are serialized as raster-scan bit strings (paper §4), and the
// wire codec, where every downstream byte counts against the bandwidth
// budget the paper measures.
//
// Bits are packed MSB-first within each byte, matching the raster-scan
// reading order used in the paper's figures.
package bitio

import (
	"errors"
	"fmt"
)

// ErrOutOfBits is returned by Reader when a read extends past the stream.
var ErrOutOfBits = errors.New("bitio: read past end of bit stream")

// Writer accumulates bits into a byte slice. The zero value is ready to use.
type Writer struct {
	buf  []byte
	nBit int // total bits written
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bits.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, (sizeHint+7)/8)}
}

// WriteBit appends a single bit (true = 1).
func (w *Writer) WriteBit(bit bool) {
	if w.nBit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if bit {
		w.buf[w.nBit/8] |= 1 << (7 - uint(w.nBit%8))
	}
	w.nBit++
}

// WriteBits appends the low n bits of v, most significant first. n must be
// in [0, 64].
func (w *Writer) WriteBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(v>>(uint(i))&1 == 1)
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nBit }

// Bytes returns the packed bit string. The final byte is zero-padded. The
// returned slice aliases the writer's buffer; callers must not keep writing
// through w while holding it unless they copy first.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset clears the writer for reuse, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nBit = 0
}

// Reader consumes bits from a byte slice produced by Writer.
type Reader struct {
	buf  []byte
	nBit int // total readable bits
	pos  int // next bit index
}

// NewReader returns a Reader over the first nBits bits of buf. If nBits is
// negative, all len(buf)*8 bits are readable.
func NewReader(buf []byte, nBits int) *Reader {
	if nBits < 0 || nBits > len(buf)*8 {
		nBits = len(buf) * 8
	}
	return &Reader{buf: buf, nBit: nBits}
}

// ReadBit consumes and returns the next bit.
func (r *Reader) ReadBit() (bool, error) {
	if r.pos >= r.nBit {
		return false, ErrOutOfBits
	}
	b := r.buf[r.pos/8]>>(7-uint(r.pos%8))&1 == 1
	r.pos++
	return b, nil
}

// ReadBits consumes n bits and returns them as the low bits of a uint64,
// most significant first. n must be in [0, 64].
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("bitio: invalid bit count %d", n)
	}
	var v uint64
	for i := 0; i < n; i++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v <<= 1
		if bit {
			v |= 1
		}
	}
	return v, nil
}

// BitAt returns the bit at absolute index i without consuming it.
func (r *Reader) BitAt(i int) (bool, error) {
	if i < 0 || i >= r.nBit {
		return false, ErrOutOfBits
	}
	return r.buf[i/8]>>(7-uint(i%8))&1 == 1, nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nBit - r.pos }

// Pos returns the index of the next bit to be read.
func (r *Reader) Pos() int { return r.pos }

// Seek positions the reader at absolute bit index i.
func (r *Reader) Seek(i int) error {
	if i < 0 || i > r.nBit {
		return ErrOutOfBits
	}
	r.pos = i
	return nil
}

// String renders the first n bits of buf as a "0101…" string, handy in
// tests and debug output mirroring the paper's bitmap figures.
func String(buf []byte, n int) string {
	out := make([]byte, 0, n)
	for i := 0; i < n && i < len(buf)*8; i++ {
		if buf[i/8]>>(7-uint(i%8))&1 == 1 {
			out = append(out, '1')
		} else {
			out = append(out, '0')
		}
	}
	return string(out)
}
