package sim

import (
	"testing"

	"github.com/sabre-geo/sabre/internal/wire"
)

// pairCounts maps (user, alarm) to how many times it was delivered.
func pairCounts(ts []Trigger) map[[2]uint64]int {
	m := make(map[[2]uint64]int, len(ts))
	for _, t := range ts {
		m[[2]uint64{t.User, t.Alarm}]++
	}
	return m
}

// TestFaultInjectionDeliveryEquality is the acceptance check for the
// fault-tolerant lifecycle: for each safe-region strategy, a seeded
// schedule of drops, delays, duplicates, reorders, partitions and hard
// resets must deliver exactly the same (user, alarm) set as the
// fault-free run — nothing lost, nothing delivered twice.
func TestFaultInjectionDeliveryEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-strategy fault simulation")
	}
	w, err := BuildWorkload(SmallWorkload(11))
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultFaultPlan(77, w.Config.DurationTicks)
	cases := []struct {
		name string
		sc   StrategyConfig
	}{
		{"MWPSR", StrategyConfig{Strategy: wire.StrategyMWPSR}},
		{"GBSR", StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 1}},
		{"PBSR", StrategyConfig{Strategy: wire.StrategyPBSR, PyramidHeight: 5}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base, err := Run(w, tc.sc)
			if err != nil {
				t.Fatal(err)
			}
			faulty, err := RunFaulty(w, tc.sc, plan)
			if err != nil {
				t.Fatal(err)
			}
			basePairs := pairCounts(base.Triggers)
			faultPairs := pairCounts(faulty.Triggers)
			for p, c := range faultPairs {
				if c != 1 {
					t.Errorf("pair (user %d, alarm %d) delivered %d times under faults", p[0], p[1], c)
				}
				if basePairs[p] == 0 {
					t.Errorf("pair (user %d, alarm %d) delivered under faults but not fault-free", p[0], p[1])
				}
			}
			for p := range basePairs {
				if faultPairs[p] == 0 {
					t.Errorf("pair (user %d, alarm %d) lost under faults", p[0], p[1])
				}
			}
			if len(base.Triggers) == 0 {
				t.Fatal("workload produced no triggers; the equality check is vacuous")
			}
			t.Logf("%s: %d fault-free triggers, %d faulty deliveries, equal sets",
				tc.name, len(base.Triggers), len(faulty.Triggers))
		})
	}
}

// TestRunFaultyDeterministic asserts that the fault harness replays
// byte-identically: same workload + plan → the exact same trigger
// sequence, delivery ticks included.
func TestRunFaultyDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fault simulation")
	}
	cfg := SmallWorkload(5)
	cfg.Vehicles = 60
	cfg.DurationTicks = 200
	cfg.NumAlarms = 80
	w, err := BuildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultFaultPlan(123, cfg.DurationTicks)
	sc := StrategyConfig{Strategy: wire.StrategyMWPSR}
	a, err := RunFaulty(w, sc, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFaulty(w, sc, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Triggers) != len(b.Triggers) {
		t.Fatalf("trigger counts differ: %d vs %d", len(a.Triggers), len(b.Triggers))
	}
	for i := range a.Triggers {
		if a.Triggers[i] != b.Triggers[i] {
			t.Fatalf("trigger %d differs: %+v vs %+v", i, a.Triggers[i], b.Triggers[i])
		}
	}
	if a.UplinkMessages != b.UplinkMessages || a.DownlinkBytes != b.DownlinkBytes {
		t.Errorf("traffic not deterministic: %d/%d vs %d/%d uplink msgs / downlink bytes",
			a.UplinkMessages, a.DownlinkBytes, b.UplinkMessages, b.DownlinkBytes)
	}
}
