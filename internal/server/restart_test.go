package server

import (
	"sync"
	"testing"
	"time"

	"github.com/sabre-geo/sabre/internal/alarm"
	"github.com/sabre-geo/sabre/internal/client"
	"github.com/sabre-geo/sabre/internal/geom"
	"github.com/sabre-geo/sabre/internal/metrics"
	"github.com/sabre-geo/sabre/internal/transport"
	"github.com/sabre-geo/sabre/internal/wire"
)

// TestTCPServerKillRestartResume is the end-to-end fault-tolerance check:
// a session-enrolled client walks toward an alarm over real TCP, the
// listener is killed and restarted mid-walk (the engine — and with it the
// session table — survives, as it would behind a crash-restarted
// front end), and the client must reconnect, resume its session by token,
// and still receive the firing exactly once.
func TestTCPServerKillRestartResume(t *testing.T) {
	eng := newEngine(t, nil)
	id := install(t, eng, alarm.Alarm{
		Scope: alarm.Private, Owner: 42,
		Region: geom.RectAround(geom.Pt(2000, 500), 200),
	})

	start := func() (*TCPServer, string) {
		t.Helper()
		srv, err := NewTCPServerIdle(eng, "127.0.0.1:0", nil, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve()
		return srv, srv.Addr().String()
	}
	srv, addr0 := start()
	defer func() { srv.Close() }()

	var mu sync.Mutex
	addr := addr0
	dial := func() (transport.Conn, error) {
		mu.Lock()
		a := addr
		mu.Unlock()
		return transport.DialDeadline(a, time.Second, 10*time.Second, 10*time.Second)
	}

	met := &metrics.Client{}
	cl := client.New(42, wire.StrategyMWPSR, met)
	sess := client.NewSession(cl, dial, client.SessionConfig{
		HeartbeatEvery: 3,
		DeadAfterTicks: 10,
		ResendEvery:    4,
		BackoffBase:    1,
		BackoffMax:     4,
		JitterSeed:     9,
	}, met)
	var delivered []uint64
	sess.OnFired = func(ids []uint64) { delivered = append(delivered, ids...) }

	const killTick, restartTick = 30, 34
	firedAt := -1
	tick := 0
	step := func() {
		// Walk east 20 m per tick until the firing, then hold position so
		// any duplicate delivery would surface.
		x := 500 + float64(tick)*20
		if firedAt >= 0 {
			x = 500 + float64(firedAt)*20
		}
		sess.Step(tick, geom.Pt(x, 500))
		if firedAt < 0 && len(delivered) > 0 {
			firedAt = tick
		}
		tick++
		time.Sleep(2 * time.Millisecond) // let TCP replies land before the next tick
	}

	for tick < killTick {
		step()
	}
	srv.Close()
	for tick < restartTick {
		step() // ticks against a dead server: degrade, queue, back off
	}
	srv, addr1 := start()
	mu.Lock()
	addr = addr1
	mu.Unlock()

	for tick < 400 && (firedAt < 0 || tick < firedAt+60) {
		step()
	}

	if len(delivered) != 1 || delivered[0] != uint64(id) {
		t.Fatalf("delivered = %v, want exactly [%d]", delivered, id)
	}
	if got := cl.Fired(); len(got) != 1 || got[0] != uint64(id) {
		t.Fatalf("client fired log = %v, want [%d]", got, id)
	}
	if !sess.Resumed() {
		t.Error("session did not resume by token after the restart")
	}
	if met.Reconnects < 2 {
		t.Errorf("Reconnects = %d, want at least initial connect + post-restart", met.Reconnects)
	}
	snap := eng.Metrics().Snapshot()
	if snap.SessionsResumed < 1 {
		t.Errorf("SessionsResumed = %d, want >= 1", snap.SessionsResumed)
	}
	if snap.AlarmsTriggered != 1 {
		t.Errorf("server AlarmsTriggered = %d, want 1", snap.AlarmsTriggered)
	}
	// Drain: the ack must eventually clear the pending set, or the server
	// would redeliver forever.
	deadline := time.Now().Add(2 * time.Second)
	for eng.PendingFired(42) != nil && time.Now().Before(deadline) {
		step()
	}
	if got := eng.PendingFired(42); got != nil {
		t.Errorf("firing never acknowledged; pending = %v", got)
	}
	if qs := sess.QueueLen(); qs != 0 {
		t.Errorf("client still holds %d unconfirmed reports", qs)
	}
}
